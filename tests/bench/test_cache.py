"""Persistent result cache: hits, invalidation, robustness, reproduce."""

from __future__ import annotations

import dataclasses
import pytest

from repro.bench.cache import ResultCache, code_stamp, default_cache, result_key
from repro.bench.export import reproduce_all, to_json
from repro.bench.parallel import pair_tasks, run_many
from repro.bench.runner import run_pair
from repro.compiler.passes import PrefetchOptions
from repro.sim.config import paper_config
from repro.workloads import matmul


@pytest.fixture
def cache(tmp_path) -> ResultCache:
    return ResultCache(tmp_path / "results")


class TestKeys:
    def test_key_is_deterministic(self):
        wl = matmul.build(n=4, threads=2)
        cfg = paper_config(2)
        assert result_key(wl, cfg, True) == result_key(wl, cfg, True)

    def test_key_varies_with_inputs(self):
        wl = matmul.build(n=4, threads=2)
        cfg = paper_config(2)
        base = result_key(wl, cfg, prefetch=False)
        assert result_key(wl, cfg, prefetch=True) != base
        assert result_key(wl, paper_config(4), prefetch=False) != base
        assert result_key(wl, cfg.with_latency(1), prefetch=False) != base
        assert result_key(wl, cfg, False, max_cycles=10) != base
        other = matmul.build(n=8, threads=2)
        assert result_key(other, cfg, prefetch=False) != base

    def test_key_varies_with_options(self):
        wl = matmul.build(n=4, threads=2)
        cfg = paper_config(2)
        assert result_key(wl, cfg, True, PrefetchOptions()) != result_key(
            wl, cfg, True, PrefetchOptions(worthwhile_threshold=0.9)
        )

    def test_key_varies_with_code_stamp(self, monkeypatch):
        wl = matmul.build(n=4, threads=2)
        cfg = paper_config(2)
        before = result_key(wl, cfg, False)
        monkeypatch.setattr(
            "repro.bench.cache.code_stamp", lambda: "different-code"
        )
        assert result_key(wl, cfg, False) != before

    def test_key_varies_with_activity_content(self):
        # Same name + params but different generated data must not alias.
        a = matmul.build(n=4, threads=2)
        b = matmul.build(n=4, threads=2)
        b.activity.globals[0] = dataclasses.replace(
            b.activity.globals[0],
            data=tuple(x + 1 for x in b.activity.globals[0].data),
        )
        assert result_key(a, paper_config(1), False) != result_key(
            b, paper_config(1), False
        )

    def test_code_stamp_is_stable_within_process(self):
        assert code_stamp() == code_stamp()
        assert len(code_stamp()) == 16


class TestStore:
    def test_roundtrip(self, cache):
        wl = matmul.build(n=4, threads=2)
        pair = run_pair(wl, paper_config(1), cache=cache)
        assert cache.stores == 2 and cache.hits == 0
        again = run_pair(wl, paper_config(1), cache=cache)
        assert cache.hits == 2
        assert again.base.cycles == pair.base.cycles
        assert again.prefetch.cycles == pair.prefetch.cycles

    def test_corrupt_entry_is_a_miss(self, cache):
        wl = matmul.build(n=4, threads=2)
        run_pair(wl, paper_config(1), cache=cache)
        for path in cache.root.glob("*.pkl"):
            path.write_bytes(b"not a pickle")
        pair = run_pair(wl, paper_config(1), cache=cache)
        assert pair.base.cycles > 0
        assert cache.hits == 0

    def test_corrupt_entry_is_quarantined_not_reparsed(self, cache):
        wl = matmul.build(n=4, threads=2)
        pair = run_pair(wl, paper_config(1), cache=cache)
        keys = [p.stem for p in cache.root.glob("*.pkl")]
        victim = keys[0]
        (cache.root / f"{victim}.pkl").write_bytes(b"not a pickle")
        assert cache.get(victim) is None
        assert cache.corrupt == 1
        # The bytes moved aside for post-mortems; the key is a clean miss
        # now (no .pkl to re-parse on the next lookup).
        assert (cache.root / f"{victim}.corrupt").exists()
        assert not (cache.root / f"{victim}.pkl").exists()
        assert cache.get(victim) is None
        assert cache.corrupt == 1  # quarantined once, not per lookup
        assert "corrupt=1" in repr(cache)
        assert "quarantined" in cache.summary()
        # A re-run heals the entry in place.
        healed = run_pair(wl, paper_config(1), cache=cache)
        assert healed.base.cycles == pair.base.cycles

    def test_clear_also_removes_quarantined_entries(self, cache):
        run_pair(matmul.build(n=4, threads=2), paper_config(1), cache=cache)
        victim = next(cache.root.glob("*.pkl")).stem
        (cache.root / f"{victim}.pkl").write_bytes(b"garbage")
        cache.get(victim)
        assert (cache.root / f"{victim}.corrupt").exists()
        cache.clear()
        assert not list(cache.root.glob("*.corrupt"))
        assert len(cache) == 0

    def test_unwritable_root_degrades_gracefully(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("in the way")
        cache = ResultCache(blocker / "impossible")
        pair = run_pair(
            matmul.build(n=4, threads=2), paper_config(1), cache=cache
        )
        assert pair.base.cycles > 0
        assert cache.stores == 0

    def test_len_and_clear(self, cache):
        assert len(cache) == 0
        run_pair(matmul.build(n=4, threads=2), paper_config(1), cache=cache)
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0


class TestDefaultCache:
    def test_env_path(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_BENCH_CACHE", str(tmp_path / "c"))
        cache = default_cache()
        assert cache is not None and cache.root == tmp_path / "c"

    def test_env_off(self, monkeypatch):
        for value in ("off", "0", "none", ""):
            monkeypatch.setenv("REPRO_BENCH_CACHE", value)
            assert default_cache() is None

    def test_default_location_under_xdg(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_BENCH_CACHE", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        cache = default_cache()
        assert cache is not None and cache.root == tmp_path / "repro-bench"


class TestCachedReproduce:
    def test_second_reproduce_performs_zero_simulations(
        self, cache, monkeypatch
    ):
        first = reproduce_all(scale="test", spes=(1,), cache=cache)
        assert cache.misses > 0 and cache.hits == 0
        executed = cache.misses

        def forbidden(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("cached reproduce re-simulated a run")

        monkeypatch.setattr("repro.bench.parallel.run_workload", forbidden)
        second = reproduce_all(scale="test", spes=(1,), cache=cache)
        assert cache.hits == executed
        assert to_json(first) == to_json(second)

    def test_cache_mixes_hits_and_misses(self, cache):
        wl = matmul.build(n=4, threads=2)
        run_many(list(pair_tasks(wl, paper_config(1))), cache=cache)
        tasks = list(pair_tasks(wl, paper_config(1)))
        tasks += list(pair_tasks(wl, paper_config(2)))
        messages: list[str] = []
        run_many(tasks, cache=cache, progress=messages.append)
        assert sum("(cached)" in m for m in messages) == 2
        assert sum("(ran)" in m for m in messages) == 2


class TestParseBytes:
    def test_plain_and_suffixed_sizes(self):
        from repro.bench.cache import parse_bytes

        assert parse_bytes("1048576") == 1048576
        assert parse_bytes("512k") == 512 * 1024
        assert parse_bytes("64M") == 64 * 1024 * 1024
        assert parse_bytes("2g") == 2 * 1024 ** 3
        assert parse_bytes("1.5k") == 1536

    def test_empty_and_none_mean_unbounded(self):
        from repro.bench.cache import parse_bytes

        assert parse_bytes(None) is None
        assert parse_bytes("") is None
        assert parse_bytes("  ") is None
        assert parse_bytes("0") is None  # a zero budget is no budget

    def test_garbage_raises(self):
        from repro.bench.cache import parse_bytes

        import pytest as _pytest
        for bad in ("lots", "12q", "k"):
            with _pytest.raises(ValueError, match="byte size"):
                parse_bytes(bad)


class TestSizeBudget:
    def _fill(self, cache, n, start=0):
        """Store n real results under synthetic keys with stepped mtimes
        (filesystem mtime granularity is too coarse for LRU ordering)."""
        import os as _os
        import time as _time

        wl = matmul.build(n=4, threads=2)
        result = pair_tasks(wl, paper_config(1))[0].run()
        now = _time.time()
        keys = []
        for i in range(start, start + n):
            key = f"{i:03d}" + "f" * 61
            cache.put(key, result)
            # Backdate: oldest first, and always older than "now", so a
            # get()-touch (current time) genuinely promotes an entry.
            stamp = now - 1000 + i
            _os.utime(cache.root / f"{key}.pkl", (stamp, stamp))
            keys.append(key)
        return keys

    def test_put_evicts_least_recently_used(self, tmp_path):
        probe = ResultCache(tmp_path / "probe")
        self._fill(probe, 1)
        entry_size = probe.disk_usage()[1]

        cache = ResultCache(tmp_path / "c", max_bytes=3 * entry_size)
        keys = self._fill(cache, 3)
        assert cache.evicted == 0
        extra = self._fill(cache, 1, start=3)
        assert cache.evicted == 1
        assert cache.get(keys[0]) is None  # oldest went first
        assert all(cache.get(k) is not None for k in keys[1:] + extra)

    def test_hit_refreshes_the_lru_clock(self, tmp_path):
        probe = ResultCache(tmp_path / "probe")
        self._fill(probe, 1)
        entry_size = probe.disk_usage()[1]

        cache = ResultCache(tmp_path / "c", max_bytes=3 * entry_size)
        keys = self._fill(cache, 3)
        assert cache.get(keys[0]) is not None  # touch the oldest...
        self._fill(cache, 1, start=3)
        # ...so the second-oldest is evicted instead
        assert cache.get(keys[1]) is None
        assert cache.get(keys[0]) is not None

    def test_trim_reports_and_counts_evictions(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        self._fill(cache, 3)
        assert cache.trim(None) == 0  # no budget, no-op
        removed = cache.trim(1)
        assert removed == 3
        assert cache.evicted == 3
        assert len(cache) == 0
        assert "3 entr(ies) evicted by the size budget" in cache.summary()

    def test_unbudgeted_cache_never_evicts(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        self._fill(cache, 3)
        assert cache.evicted == 0 and len(cache) == 3

    def test_default_cache_reads_budget_from_env(self, monkeypatch, tmp_path):
        from repro.bench.cache import default_cache

        monkeypatch.setenv("REPRO_BENCH_CACHE", str(tmp_path / "c"))
        monkeypatch.setenv("REPRO_BENCH_CACHE_MAX_BYTES", "512k")
        cache = default_cache()
        assert cache.max_bytes == 512 * 1024
        monkeypatch.setenv("REPRO_BENCH_CACHE_MAX_BYTES", "garbage")
        assert default_cache().max_bytes is None  # unparseable = off
