"""Parallel execution: identical results, fallbacks, progress, env knobs."""

from __future__ import annotations

import pytest

from repro.bench.export import run_to_dict
from repro.bench.cache import ResultCache
from repro.bench.parallel import (
    RunTask,
    TaskFailure,
    default_jobs,
    pair_tasks,
    run_many,
)
from repro.bench.runner import run_pair, sweep
from repro.bench.scale import builders
from repro.sim.config import paper_config
from repro.workloads import matmul


def _matrix_tasks() -> list[RunTask]:
    """All three benchmarks x 2 SPE counts x both variants (test scale)."""
    tasks: list[RunTask] = []
    for name, build in builders("test").items():
        workload = build()
        for n in (1, 2):
            tasks.extend(pair_tasks(workload, paper_config(n)))
    return tasks


class TestParallelIdentical:
    def test_parallel_matches_serial_on_all_benchmarks(self):
        # The acceptance bar: jobs >= 2 must be bit-identical to the
        # serial path — cycle counts and every exported statistic — on
        # bitcnt, mmul and zoom.
        tasks = _matrix_tasks()
        serial = run_many(tasks, jobs=1)
        parallel = run_many(tasks, jobs=2)
        assert [r.cycles for r in serial] == [r.cycles for r in parallel]
        for s, p in zip(serial, parallel):
            assert run_to_dict(s) == run_to_dict(p)

    def test_results_keep_task_order(self):
        wl = matmul.build(n=4, threads=2)
        tasks = list(pair_tasks(wl, paper_config(1)))
        tasks += list(pair_tasks(wl, paper_config(2)))
        results = run_many(tasks, jobs=2)
        assert [r.config.num_spes for r in results] == [1, 1, 2, 2]
        assert [r.prefetch for r in results] == [False, True, False, True]

    def test_sweep_parallel_matches_serial(self):
        build = lambda: matmul.build(n=4, threads=2)
        a = sweep(build, spes=(1, 2), jobs=1)
        b = sweep(build, spes=(1, 2), jobs=2)
        for n in (1, 2):
            assert a.pairs[n].base.cycles == b.pairs[n].base.cycles
            assert a.pairs[n].prefetch.cycles == b.pairs[n].prefetch.cycles


class TestFallbacks:
    def test_pool_failure_falls_back_to_serial(self, monkeypatch):
        def broken(*args, **kwargs):
            raise OSError("no semaphores here")

        monkeypatch.setattr(
            "concurrent.futures.ProcessPoolExecutor", broken
        )
        wl = matmul.build(n=4, threads=2)
        messages: list[str] = []
        results = run_many(
            list(pair_tasks(wl, paper_config(1))), jobs=4,
            progress=messages.append,
        )
        assert len(results) == 2
        assert results[0].cycles > results[1].cycles  # base vs prefetch
        assert any("serially" in m for m in messages)

    def test_jobs_one_never_touches_the_pool(self, monkeypatch):
        def explode(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("pool should not be created for jobs=1")

        monkeypatch.setattr(
            "concurrent.futures.ProcessPoolExecutor", explode
        )
        wl = matmul.build(n=4, threads=2)
        results = run_many(list(pair_tasks(wl, paper_config(1))), jobs=1)
        assert len(results) == 2

    def test_verification_failure_propagates_from_worker(self):
        wl = matmul.build(n=4, threads=2)
        wl.oracle["C"][0] += 1  # sabotage
        tasks = [
            RunTask(wl, paper_config(1), prefetch=False),
            RunTask(wl, paper_config(1), prefetch=True),
        ]
        with pytest.raises(TaskFailure, match="wrong output"):
            run_many(tasks, jobs=2)


class TestFailureIsolation:
    def _mixed_tasks(self):
        """Three healthy pairs plus one whose oracle is sabotaged."""
        good = matmul.build(n=4, threads=2)
        bad = matmul.build(n=4, threads=4)
        bad.oracle["C"][0] += 1
        tasks = list(pair_tasks(good, paper_config(1)))
        tasks.append(RunTask(bad, paper_config(1), prefetch=False))
        tasks.extend(pair_tasks(good, paper_config(2)))
        return tasks, tasks[2].label

    @pytest.mark.parametrize("jobs", (1, 2))
    def test_summary_names_the_failing_task(self, jobs):
        tasks, bad_label = self._mixed_tasks()
        with pytest.raises(TaskFailure) as exc:
            run_many(tasks, jobs=jobs)
        assert bad_label in str(exc.value)
        assert "1 of 5 run(s) failed" in str(exc.value)
        assert set(exc.value.failures) == {bad_label}
        info = exc.value.failures[bad_label]
        assert isinstance(info.error, AssertionError)
        assert info.kind == "error"  # deterministic: never retried
        assert info.attempts == 1

    def test_other_tasks_finish_and_are_cached(self, tmp_path):
        # One bad run must not throw away the rest of the sweep: every
        # healthy task completes and lands in the cache before the batch
        # error is raised, so a fixed-up re-run costs 4 cache hits.
        tasks, _ = self._mixed_tasks()
        cache = ResultCache(tmp_path / "cache")
        with pytest.raises(TaskFailure):
            run_many(tasks, jobs=1, cache=cache)
        healthy = [t for i, t in enumerate(tasks) if i != 2]
        assert all(cache.get(t.key()) is not None for t in healthy)

    def test_progress_reports_the_failure(self):
        tasks, bad_label = self._mixed_tasks()
        messages: list[str] = []
        with pytest.raises(TaskFailure):
            run_many(tasks, jobs=1, progress=messages.append)
        assert any(
            bad_label in m and "AssertionError" in m for m in messages
        )


class TestKnobs:
    def test_default_jobs_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_JOBS", raising=False)
        assert default_jobs() == 1
        monkeypatch.setenv("REPRO_BENCH_JOBS", "6")
        assert default_jobs() == 6
        monkeypatch.setenv("REPRO_BENCH_JOBS", "0")
        assert default_jobs() == 1
        monkeypatch.setenv("REPRO_BENCH_JOBS", "garbage")
        assert default_jobs() == 1

    def test_progress_reports_every_run(self):
        wl = matmul.build(n=4, threads=2)
        messages: list[str] = []
        run_many(
            list(pair_tasks(wl, paper_config(1))), jobs=1,
            progress=messages.append,
        )
        assert len(messages) == 2
        assert "[1/2]" in messages[0] and "[2/2]" in messages[1]
        assert all("cycles (ran)" in m for m in messages)

    def test_run_pair_accepts_jobs(self):
        wl = matmul.build(n=4, threads=2)
        serial = run_pair(wl, paper_config(2), jobs=1)
        parallel = run_pair(wl, paper_config(2), jobs=2)
        assert serial.base.cycles == parallel.base.cycles
        assert serial.prefetch.cycles == parallel.prefetch.cycles

    def test_task_label_names_variant_and_size(self):
        wl = matmul.build(n=4, threads=2)
        base, pf = pair_tasks(wl, paper_config(4))
        assert "spes=4" in base.label and base.label.endswith("base")
        assert pf.label.endswith("prefetch")
