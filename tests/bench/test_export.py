"""Result exports: dict/JSON/CSV round-trips and the reproduce matrix."""

from __future__ import annotations

import csv
import io
import json

import pytest

from repro.bench.export import (
    pair_to_dict,
    reproduce_all,
    run_to_dict,
    scaling_to_csv,
    scaling_to_dict,
    to_json,
)
from repro.bench.runner import run_pair, sweep
from repro.sim.config import paper_config
from repro.workloads import matmul


@pytest.fixture(scope="module")
def pair():
    return run_pair(matmul.build(n=4, threads=2), paper_config(2))


@pytest.fixture(scope="module")
def scaling():
    return sweep(lambda: matmul.build(n=4, threads=2), spes=(1, 2))


class TestRunToDict:
    def test_fields_present(self, pair):
        d = run_to_dict(pair.base)
        assert d["cycles"] == pair.base.cycles
        assert d["spes"] == 2
        assert d["memory_latency"] == 150
        assert set(d["breakdown"]) == {
            "working", "idle", "mem_stall", "ls_stall", "lse_stall",
            "prefetch",
        }
        assert d["instructions"]["read"] == 2 * 4**3

    def test_json_serializable(self, pair):
        json.loads(to_json(pair_to_dict(pair)))

    def test_breakdown_fractions_sum_to_one(self, pair):
        d = run_to_dict(pair.base)
        assert sum(d["breakdown"].values()) == pytest.approx(1.0)


class TestScalingExport:
    def test_dict_points_and_scalability(self, scaling):
        d = scaling_to_dict(scaling)
        assert set(d["points"]) == {"1", "2"}
        assert d["scalability"]["base"]["1"] == 1.0
        assert d["scalability"]["base"]["2"] > 1.0

    def test_csv_has_row_per_point_and_variant(self, scaling):
        text = scaling_to_csv(scaling)
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0][0] == "workload"
        assert len(rows) == 1 + 2 * 2  # header + 2 SPE points x 2 variants
        variants = {r[2] for r in rows[1:]}
        assert variants == {"base", "prefetch"}


class TestReproduceAll:
    def test_matrix_structure(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "test")
        lines = []
        data = reproduce_all(spes=(1, 2), progress=lines.append)
        assert set(data["experiments"]) == {
            "scaling", "table5", "fig5", "fig9", "latency1"
        }
        assert set(data["experiments"]["scaling"]) == {
            "bitcnt", "mmul", "zoom"
        }
        assert lines  # progress was reported
        # Fig 5 shape survives the export.
        fig5 = data["experiments"]["fig5"]["mmul"]
        assert fig5["base"]["mem_stall"] > 0.8
        assert fig5["prefetch"]["mem_stall"] < 0.05
        json.loads(to_json(data))


class TestSchemaVersion:
    def test_run_payload_carries_schema_version(self, pair):
        from repro.bench.export import SCHEMA_VERSION

        data = run_to_dict(pair.base)
        assert data["schema_version"] == SCHEMA_VERSION

    def test_reproduce_all_carries_schema_version(self, monkeypatch):
        from repro.bench.export import SCHEMA_VERSION, reproduce_all

        monkeypatch.delenv("REPRO_BENCH_JOBS", raising=False)
        data = reproduce_all(scale="test", spes=(1,))
        assert data["schema_version"] == SCHEMA_VERSION

    def test_round_trips_through_json(self, pair):
        from repro.bench.export import SCHEMA_VERSION

        data = run_to_dict(pair.base)
        again = json.loads(json.dumps(data, sort_keys=True))
        assert again == data
        assert again["schema_version"] == SCHEMA_VERSION

    def test_serve_protocol_shares_the_constant(self):
        from repro.bench.export import SCHEMA_VERSION
        from repro.serve.protocol import SCHEMA_VERSION as SERVE_VERSION

        assert SERVE_VERSION is SCHEMA_VERSION
