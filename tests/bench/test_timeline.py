"""Timeline rendering from trace events."""

from __future__ import annotations

from repro.bench.timeline import Timeline, render_timeline
from repro.cell.machine import Machine
from repro.compiler.passes import prefetch_transform
from repro.sim.trace import Tracer
from repro.testing import small_config
from repro.workloads import matmul


def traced(prefetch=True, spes=2):
    wl = matmul.build(n=4, threads=2)
    act = prefetch_transform(wl.activity) if prefetch else wl.activity
    m = Machine(small_config(num_spes=spes))
    tracer = Tracer()
    m.attach_tracer(tracer)
    m.load(act)
    res = m.run()
    return tracer, res


class TestTimeline:
    def test_rows_per_active_spu(self):
        tracer, res = traced(spes=2)
        text = render_timeline(tracer, res.cycles)
        assert "spu0" in text or "spu1" in text
        assert "legend" in text

    def test_busy_fraction_bounded(self):
        tracer, res = traced()
        tl = Timeline(tracer, res.cycles)
        for spu in tl.per_spu:
            assert 0.0 < tl.busy_fraction(spu) <= 1.0

    def test_prefetch_marks_pf_segments(self):
        tracer, res = traced(prefetch=True, spes=1)
        text = render_timeline(tracer, res.cycles, width=120)
        assert "p" in text.split("legend")[0]

    def test_empty_trace(self):
        assert "no SPU activity" in render_timeline(Tracer(), 100)

    def test_width_respected(self):
        tracer, res = traced()
        tl = Timeline(tracer, res.cycles)
        for line in tl.render(width=40).splitlines()[1:-1]:
            bar = line.split("|")[1]
            assert len(bar) == 40

    def test_golden_render(self):
        """Byte-exact output on a fixed event sequence.

        Pins the rendering across the port to the shared interval
        reconstruction: pf segment, idle gap, run segment, fractions,
        header and legend all unchanged.
        """
        tracer = Tracer()
        tracer.emit(0, "spu0", "dispatch", tid=1, template="t", pf=True)
        tracer.emit(40, "spu0", "yield-dma", tid=1)
        tracer.emit(60, "spu0", "dispatch", tid=1, template="t", pf=False)
        tracer.emit(100, "spu0", "thread-stop", tid=1)
        tl = Timeline(tracer, 100)
        assert tl.busy_fraction("spu0") == 0.8
        assert tl.render(width=20) == (
            "0   cycles   100\n"
            "  spu0 |pppppppp....########| 80.0% busy\n"
            "legend: # executing, p prefetch block, . idle"
        )
