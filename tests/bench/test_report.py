"""Report rendering: table formatting and figure-specific views."""

from __future__ import annotations

from repro.bench.report import format_table, table5
from repro.cell.machine import RunResult
from repro.sim.config import paper_config
from repro.sim.stats import MachineStats, SpuStats


class TestFormatTable:
    def test_alignment_and_separator(self):
        text = format_table(["name", "value"], [["a", 1], ["bbb", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4
        # Column widths consistent.
        widths = {len(line) for line in lines}
        assert len(widths) == 1

    def test_numbers_right_aligned(self):
        text = format_table(["x"], [[1], [100]])
        lines = text.splitlines()
        assert lines[2] == "  1"
        assert lines[3] == "100"


def fake_run(**opcounts) -> RunResult:
    stats = MachineStats()
    spu = SpuStats()
    for op, n in opcounts.items():
        spu.mix.record(op, n)
    stats.spus.append(spu)
    return RunResult(
        activity="fake",
        config=paper_config(1),
        cycles=100,
        stats=stats,
        prefetch=False,
    )


class TestTable5:
    def test_columns_match_paper(self):
        text = table5({"fake": fake_run(LOAD=3, STORE=2, READ=5, WRITE=1,
                                        ADD=9)})
        assert "Total" in text and "LOAD" in text and "WRITE" in text
        row = text.splitlines()[-1].split()
        assert row == ["fake", "20", "3", "2", "5", "1"]

    def test_lload_reported_in_load_column(self):
        text = table5({"fake": fake_run(LLOAD=7)})
        row = text.splitlines()[-1].split()
        assert row[2] == "7"  # LOAD column
        assert row[4] == "0"  # READ column
