"""Fast-path equivalence matrix: speed may change, bits may not.

The decoded-instruction cache, the SPU fast-forward and the engine heap
hygiene (see ``docs/PERFORMANCE.md``) are pure performance work: for any
benchmark, seed and configuration, a run with ``REPRO_SIM_FAST=1`` must
produce **bit-identical** architectural outputs, ``MachineStats`` and
profiles to the original code (``REPRO_SIM_FAST=0``).  This matrix
enforces it across the three paper benchmarks under every observation
regime that could perturb the fast path: plain, metrics hub attached,
chaos faults, and the invariant sanitizer.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.bench.scale import builders
from repro.cell.machine import Machine
from repro.compiler.passes import prefetch_transform
from repro.isa.interpreter import run_functional
from repro.obs.diff import diff_profiles
from repro.obs.profile import profile_workload
from repro.sim.config import MachineConfig

BENCHMARKS = ("bitcnt", "mmul", "zoom")
SEEDS = (1, 2, 3)

#: Same chaos spec as the fault matrix: every fault class fires.
CHAOS = ("dma_delay=0.1,dma_drop=0.08,bus_delay=0.05,bus_dup=0.05,"
         "mem_stall=0.05,dma_max_retries=2")


def _run(name: str, config: MachineConfig, monkeypatch, fast: bool):
    """One prefetch-variant run; returns (result, outputs)."""
    monkeypatch.setenv("REPRO_SIM_FAST", "1" if fast else "0")
    workload = builders("test")[name]()
    machine = Machine(config)
    machine.load(prefetch_transform(workload.activity))
    result = machine.run()
    outputs = {obj: machine.read_global(obj) for obj in workload.oracle}
    workload.verify(machine)
    return result, outputs


def _assert_equivalent(fast, slow):
    f_result, f_outputs = fast
    s_result, s_outputs = slow
    assert f_outputs == s_outputs
    assert f_result.cycles == s_result.cycles
    # Field-by-field beats a bare ``==`` for diagnosability.
    assert dataclasses.asdict(f_result.stats) == dataclasses.asdict(
        s_result.stats
    )


class TestPlainEquivalence:
    @pytest.mark.parametrize("name", BENCHMARKS)
    def test_stats_and_outputs_bit_identical(self, name, monkeypatch):
        cfg = MachineConfig()
        _assert_equivalent(
            _run(name, cfg, monkeypatch, fast=True),
            _run(name, cfg, monkeypatch, fast=False),
        )


class TestFaultedEquivalence:
    @pytest.mark.parametrize("name", BENCHMARKS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_chaos_runs_bit_identical(self, name, seed, monkeypatch):
        cfg = MachineConfig().with_faults(f"seed={seed},{CHAOS}")
        fast = _run(name, cfg, monkeypatch, fast=True)
        slow = _run(name, cfg, monkeypatch, fast=False)
        _assert_equivalent(fast, slow)
        # The chaos spec actually fired, so the equivalence was under load.
        assert fast[0].stats.faults.any_fired


class TestSanitizedEquivalence:
    @pytest.mark.parametrize("name", BENCHMARKS)
    def test_sanitized_runs_bit_identical(self, name, monkeypatch):
        cfg = MachineConfig().replace(sanitize=True)
        _assert_equivalent(
            _run(name, cfg, monkeypatch, fast=True),
            _run(name, cfg, monkeypatch, fast=False),
        )


class TestObservedEquivalence:
    """With a hub attached the SPU fast-forward disengages, but the
    decoded issue loop still runs — every gauge sample, bucket series
    and trace event must match the original path."""

    @pytest.mark.parametrize("name", BENCHMARKS)
    def test_profiles_bit_identical(self, name, monkeypatch):
        def profiled(fast: bool):
            monkeypatch.setenv("REPRO_SIM_FAST", "1" if fast else "0")
            workload = builders("test")[name]()
            return profile_workload(workload, MachineConfig())

        f_result, f_profile = profiled(True)
        s_result, s_profile = profiled(False)
        assert f_result.cycles == s_result.cycles
        assert dataclasses.asdict(f_result.stats) == dataclasses.asdict(
            s_result.stats
        )
        # The full profile dump — metrics rings, interval series, engine
        # totals — is identical, so the self-diff is clean by definition.
        assert f_profile.to_dict() == s_profile.to_dict()
        diff = diff_profiles(s_profile.to_dict(), f_profile.to_dict())
        assert diff.regressions(max_delta_pct=0.0) == []


class TestInterpreterEquivalence:
    @pytest.mark.parametrize("name", BENCHMARKS)
    def test_functional_machine_bit_identical(self, name, monkeypatch):
        def run(fast: bool):
            monkeypatch.setenv("REPRO_SIM_FAST", "1" if fast else "0")
            workload = builders("test")[name]()
            return run_functional(workload.activity)

        fast, slow = run(True), run(False)
        assert fast.memory == slow.memory
        assert fast.instructions == slow.instructions
        assert fast.threads_run == slow.threads_run
