"""Whole-machine checkpoint/restore bit-identity.

The hard correctness bar: run-to-completion equals run-to-checkpoint +
restore + continue, for **stats, workload outputs and profiles**, across
benchmarks, fault seeds and observability configurations — including
checkpoints landed at adversarial cycles (mid fast-forward window, mid
DMA retry backoff, mid bus delivery with a pending injected duplicate)
and restores performed in a fresh process.
"""

from __future__ import annotations

import os
import pickle
import random
import subprocess
import sys

import pytest

from repro.bench.scale import builders
from repro.cell.machine import Machine
from repro.compiler.passes import prefetch_transform
from repro.sim.engine import Callback
from repro.testing import small_config

BENCHMARKS = ("bitcnt", "mmul", "zoom")

CHAOS = "dma_delay=0.1,dma_drop=0.1,bus_delay=0.1,bus_dup=0.1,mem_stall=0.1"

#: Corrupting faults with recovery — checkpoints must capture poison
#: tables, deferred squashes and re-fetch state mid-recovery.
DATA = ("data_flip=0.3,data_truncate=0.15,data_ls_stale=0.15,"
        "data_store_corrupt=0.1")


def _config(mode: str, seed: int = 1):
    cfg = small_config(2)
    if mode == "chaos":
        cfg = cfg.with_faults(f"seed={seed},{CHAOS}")
    elif mode == "data":
        cfg = cfg.with_faults(f"seed={seed},{DATA}")
    elif mode == "sanitize":
        cfg = cfg.replace(sanitize=True)
    return cfg


def _machine(cfg, hub: bool):
    machine = Machine(cfg)
    if hub:
        from repro.obs.hub import MetricsHub

        machine.attach_hub(MetricsHub())
    return machine


def _reference(wl, cfg, tmp_path, hub=False, at=None):
    """Uninterrupted run; with ``at`` it also drops mid-flight snapshots
    (which must not perturb the result — asserted by the caller).

    Runs the prefetch-transformed activity: it exercises the MFC DMA
    machinery (the paper's point, and the state the adversarial cases
    target) and finishes an order of magnitude sooner than the blocking
    baseline."""
    machine = _machine(cfg, hub)
    machine.load(prefetch_transform(wl.activity))
    kwargs = {}
    if at:
        kwargs = dict(checkpoint_at=list(at), checkpoint_dir=str(tmp_path))
    result = machine.run(**kwargs)
    wl.verify(machine)
    return machine, result


def _assert_resumes_identically(wl, ref_machine, ref_result, path):
    machine = Machine.load_checkpoint(str(path))
    result = machine.run()
    assert result.cycles == ref_result.cycles
    assert result.stats == ref_result.stats
    wl.verify(machine)  # workload outputs in restored main memory
    if ref_machine.hub is not None:
        assert machine.hub is not None
        assert machine.hub.to_dict() == ref_machine.hub.to_dict()
    return machine


def _roundtrip(bench, mode, tmp_path, seed=1):
    wl = builders("test")[bench]()
    cfg = _config(mode, seed)
    hub = mode == "hub"
    _probe_machine, probe = _reference(wl, cfg, tmp_path, hub=hub)
    total = probe.cycles
    cycles = sorted({max(2, total // 3), max(3, (2 * total) // 3)})
    ref_machine, ref = _reference(wl, cfg, tmp_path, hub=hub, at=cycles)
    # Taking checkpoints is observation-only: same result as the probe.
    assert ref.cycles == probe.cycles
    assert ref.stats == probe.stats
    paths = sorted(tmp_path.glob("*.ckpt"))
    assert len(paths) == len(cycles)
    for path in paths:
        _assert_resumes_identically(wl, ref_machine, ref, path)


class TestBitIdentityMatrix:
    @pytest.mark.parametrize("bench", BENCHMARKS)
    @pytest.mark.parametrize("mode", ("plain", "sanitize", "hub"))
    def test_roundtrip(self, bench, mode, tmp_path):
        _roundtrip(bench, mode, tmp_path)

    @pytest.mark.parametrize("bench", BENCHMARKS)
    @pytest.mark.parametrize("seed", (1, 2, 3))
    def test_roundtrip_under_chaos(self, bench, seed, tmp_path):
        _roundtrip(bench, "chaos", tmp_path, seed=seed)

    @pytest.mark.parametrize("bench", BENCHMARKS)
    def test_roundtrip_under_data_faults(self, bench, tmp_path):
        # Corruption + recovery in flight: snapshots taken while poison
        # tables / re-fetches / squashes are live must restore and
        # finish bit-identically to the uninterrupted faulted run.
        _roundtrip(bench, "data", tmp_path, seed=1)


def _heap_callbacks(machine, kind):
    return [
        entry[4] for entry in machine.engine._heap
        if isinstance(entry[4], Callback) and entry[4].kind == kind
        and not entry[4].cancelled
    ]


def _qualifying_cycles(wl, cfg, total, predicate):
    """Cycles of the (deterministic) reference run at which ``predicate``
    holds.  Reuses the checkpoint hook as an every-visited-cycle
    observation point without writing any files: the hook fires exactly
    at the pre-dispatch instant a checkpoint would capture, so a
    checkpoint taken at a returned cycle restores to a machine on which
    the predicate still holds."""
    machine = Machine(cfg)
    machine.load(prefetch_transform(wl.activity))
    hits: list[int] = []

    def observe(path: str) -> str:
        now = machine.engine.now
        if predicate(machine) and (not hits or hits[-1] != now):
            hits.append(now)
        return path

    machine.save_checkpoint = observe
    machine.run(checkpoint_at=list(range(2, total)), checkpoint_dir=".")
    return hits


def _adversarial_roundtrip(wl, cfg, tmp_path, predicate, describe):
    """Checkpoint the reference run at a cycle where ``predicate`` holds,
    restore it, re-assert the predicate on the restored machine, and
    prove the resumed run is bit-identical.  Returns the restored
    machine (pre-resume state already consumed by the identity check is
    re-loaded fresh for the caller's structural assertions)."""
    _probe_machine, probe = _reference(wl, cfg, tmp_path)
    hits = _qualifying_cycles(wl, cfg, probe.cycles, predicate)
    assert hits, f"this run never has {describe} in flight"
    target = hits[len(hits) // 2]
    ref_machine, ref = _reference(wl, cfg, tmp_path, at=[target])
    assert ref.stats == probe.stats
    (path,) = sorted(tmp_path.glob("*.ckpt"))
    machine = Machine.load_checkpoint(str(path))
    assert predicate(machine), (
        f"restore at cycle {target} lost the in-flight {describe}"
    )
    _assert_resumes_identically(wl, ref_machine, ref, path)
    return Machine.load_checkpoint(str(path))


class TestAdversarialCycles:
    def test_mid_dma_retry_backoff(self, tmp_path):
        # Heavy dma_drop makes chunk retries (mfc.retry backoff events)
        # common; checkpoint with one in flight and prove the restored
        # machine finishes the retry protocol identically.
        wl = builders("test")["mmul"]()
        cfg = small_config(2).with_faults("seed=3,dma_drop=0.3")
        machine = _adversarial_roundtrip(
            wl, cfg, tmp_path,
            lambda m: bool(_heap_callbacks(m, "mfc.retry")),
            "a DMA chunk retry backoff",
        )
        # The command object in the pending retry IS the in-flight command
        # tracked by its MFC — shared identity survives the restore.
        retry = _heap_callbacks(machine, "mfc.retry")[0]
        cmd, mfc = retry.payload[0], retry.owner
        assert any(c is cmd for c in mfc._inflight.values())

    def test_mid_bus_delivery_with_pending_duplicate(self, tmp_path):
        def pending_duplicate(m):
            by_transfer: dict[int, int] = {}
            for cb in _heap_callbacks(m, "bus.deliver"):
                key = id(cb.payload[0])
                by_transfer[key] = by_transfer.get(key, 0) + 1
            return any(n >= 2 for n in by_transfer.values())

        wl = builders("test")["mmul"]()
        cfg = small_config(2).with_faults("seed=5,bus_dup=0.5")
        # Both pending deliveries reference the SAME transfer object after
        # restore (pickle memo), so exactly-once absorption still works —
        # re-asserted by the predicate on the restored machine.
        _adversarial_roundtrip(
            wl, cfg, tmp_path, pending_duplicate,
            "an injected duplicate bus delivery",
        )

    def test_mid_data_fault_recovery(self, tmp_path):
        # Checkpoint while a data-fault recovery is pending: a poisoned
        # frame word awaiting its scrub-or-squash LOAD, or a deferred
        # thread squash waiting for outstanding DMA to drain.  The
        # restored machine must carry that recovery state and converge
        # to the same (clean) outputs.
        def pending_recovery(m):
            return any(
                spe.lse._poison or spe.lse._virtual_poison
                or spe.lse._squash_pending
                for spe in m.spes
            )

        wl = builders("test")["mmul"]()
        cfg = small_config(2).with_faults(f"seed=1,{DATA}")
        machine = _adversarial_roundtrip(
            wl, cfg, tmp_path, pending_recovery,
            "a pending data-fault recovery",
        )
        # The run actually recovered (not just poisoned-and-never-read).
        result = machine.run()
        faults = result.stats.faults
        assert faults.frame_scrubs + faults.thread_reexecs > 0

    def test_mid_fast_forward_window(self, tmp_path):
        # A fast-forwarding SPU parks its tick far in the future.  A
        # checkpoint inside that window must restore the decoded-program
        # cache (not serialized; rebuilt in restore_state) and re-enter
        # the window bit-identically.
        def mid_fast_forward(m):
            now = m.engine.now
            return any(
                spe.spu._fast and spe.spu.thread is not None
                and spe.spu._scheduled_at is not None
                and spe.spu._scheduled_at > now + 1
                for spe in m.spes
            )

        wl = builders("test")["mmul"]()
        cfg = small_config(2)
        machine = _adversarial_roundtrip(
            wl, cfg, tmp_path, mid_fast_forward, "a fast-forward window",
        )
        for spe in machine.spes:
            if spe.spu._fast and spe.spu.thread is not None:
                assert spe.spu._dec is not None  # rebuilt, not pickled


class TestRandomCyclesProperty:
    @pytest.mark.parametrize("bench", BENCHMARKS)
    def test_random_checkpoint_cycles_roundtrip(self, bench, tmp_path):
        wl = builders("test")[bench]()
        cfg = small_config(2)
        _probe_machine, probe = _reference(wl, cfg, tmp_path)
        rng = random.Random(f"ckpt:{bench}")
        cycles = sorted(rng.sample(range(2, probe.cycles - 1), 4))
        ref_machine, ref = _reference(wl, cfg, tmp_path, at=cycles)
        assert ref.stats == probe.stats
        paths = sorted(tmp_path.glob("*.ckpt"))
        assert len(paths) == len(set(cycles))
        for path in paths:
            _assert_resumes_identically(wl, ref_machine, ref, path)


_FRESH_PROCESS_SCRIPT = """\
import pickle, sys
from repro.cell.machine import Machine

ckpt, out = sys.argv[1], sys.argv[2]
machine = Machine.load_checkpoint(ckpt)
result = machine.run()
outputs = {
    name: machine.read_global(name)
    for name in sorted(pickle.load(open(out + ".oracle", "rb")))
}
with open(out, "wb") as fh:
    pickle.dump((result.cycles, result.stats, outputs), fh)
"""


class TestFreshProcessRestore:
    def test_restore_in_fresh_process_is_bit_identical(self, tmp_path):
        wl = builders("test")["mmul"]()
        cfg = small_config(2)
        _probe_machine, probe = _reference(wl, cfg, tmp_path)
        mid = probe.cycles // 2
        ref_machine, ref = _reference(wl, cfg, tmp_path, at=[mid])
        (path,) = sorted(tmp_path.glob("*.ckpt"))
        out = tmp_path / "fresh.pkl"
        with open(str(out) + ".oracle", "wb") as fh:
            pickle.dump(sorted(wl.oracle), fh)
        env = dict(os.environ)
        root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        env["PYTHONPATH"] = os.path.join(root, "src")
        subprocess.run(
            [sys.executable, "-c", _FRESH_PROCESS_SCRIPT,
             str(path), str(out)],
            check=True, env=env, timeout=300,
        )
        with open(out, "rb") as fh:
            cycles, stats, outputs = pickle.load(fh)
        assert cycles == ref.cycles
        assert stats == ref.stats
        for name, values in outputs.items():
            assert values == ref_machine.read_global(name), name
