"""Per-template cycle attribution."""

from __future__ import annotations

from repro.bench.runner import run_workload
from repro.sim.config import paper_config
from repro.testing import small_config
from repro.workloads import bitcount, matmul


class TestTemplateCycles:
    def test_workers_dominate_mmul(self):
        res = run_workload(
            matmul.build(n=8, threads=4), small_config(num_spes=2),
            prefetch=False,
        )
        tc = res.stats.template_cycles
        assert tc["mmul_worker"] > 50 * tc["mmul_join"]

    def test_attribution_covers_non_idle_time(self):
        res = run_workload(
            matmul.build(n=8, threads=4), small_config(num_spes=2),
            prefetch=False,
        )
        attributed = sum(res.stats.template_cycles.values())
        non_idle = sum(
            s.breakdown.total - s.breakdown.idle for s in res.stats.spus
        )
        # Idle is unattributable; everything else should be (within the
        # small dispatch-boundary slack).
        assert attributed <= non_idle
        assert attributed > 0.9 * non_idle

    def test_bitcnt_kernels_visible(self):
        res = run_workload(
            bitcount.build(iterations=8, unroll=4), paper_config(2),
            prefetch=False,
        )
        tc = res.stats.template_cycles
        for name in ("bitcnt_iter", "bitcnt_comb", "k_btbl", "k_ntbl"):
            assert tc[name] > 0, name
        # The table-lookup kernels (blocking READs) dominate the ALU ones.
        assert tc["k_btbl"] > tc["k_bitcount"]
