"""Differential fuzzing: random programs through every execution path.

For each random activity the final main memory must agree between

* the cycle simulator and the functional golden model,
* the baseline and its prefetch-transformed version,
* machines of different widths, latencies and cache configurations,
* clean machines and machines under recoverable data-fault plans
  (corruption detected and repaired by re-fetch / re-execution).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cell.machine import Machine
from repro.compiler.passes import PrefetchOptions, prefetch_transform
from repro.isa.fuzz import FuzzSpec, random_activity
from repro.isa.interpreter import run_functional
from repro.sim.config import cached_config
from repro.testing import small_config


def memory_of(activity, config) -> dict[str, list[int]]:
    m = Machine(config)
    m.load(activity)
    m.run(max_cycles=20_000_000)
    return {obj.name: m.read_global(obj.name) for obj in activity.globals}


class TestGenerator:
    def test_deterministic_per_seed(self):
        a = random_activity(7)
        b = random_activity(7)
        assert [t.disassemble() for t in a.templates] == [
            t.disassemble() for t in b.templates
        ]

    def test_distinct_seeds_differ(self):
        a = random_activity(1)
        b = random_activity(2)
        assert [t.disassemble() for t in a.templates] != [
            t.disassemble() for t in b.templates
        ]

    def test_generated_activities_validate(self):
        for seed in range(20):
            random_activity(seed).validate()


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_fuzz_simulator_matches_golden_model(seed):
    activity = random_activity(seed)
    golden = run_functional(activity)
    sim = memory_of(activity, small_config(num_spes=2))
    for obj in activity.globals:
        assert sim[obj.name] == golden.read_global(obj.name), (
            f"seed {seed}: {obj.name} diverged"
        )


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), threshold=st.sampled_from([0.0, 0.5]))
def test_fuzz_prefetch_transform_preserves_semantics(seed, threshold):
    activity = random_activity(seed)
    transformed = prefetch_transform(
        activity, PrefetchOptions(worthwhile_threshold=threshold)
    )
    cfg = small_config(num_spes=2)
    assert memory_of(activity, cfg) == memory_of(transformed, cfg), (
        f"seed {seed}: the prefetch pass changed results"
    )


#: Recoverable corruption, every kind at once, default budgets.  High
#: probabilities because random programs are short: few transfers, few
#: producer stores.
_DATA_FAULTS = ("data_flip=0.25,data_truncate=0.1,data_ls_stale=0.1,"
                "data_store_corrupt=0.1")


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    fault_seed=st.sampled_from([1, 2, 3]),
)
def test_fuzz_recoverable_data_faults_match_golden_model(seed, fault_seed):
    # The data-fault recovery guarantee, differentially: random programs
    # under a recoverable corruption plan must still agree with the
    # functional golden model bit-for-bit.  The prefetch-transformed
    # variant exercises the checksummed DMA path; untransformed PS
    # stores exercise the per-store check codes.
    activity = random_activity(seed)
    golden = run_functional(activity)
    transformed = prefetch_transform(activity)
    cfg = small_config(num_spes=2).with_faults(
        f"seed={fault_seed},{_DATA_FAULTS}"
    )
    sim = memory_of(transformed, cfg)
    for obj in activity.globals:
        assert sim[obj.name] == golden.read_global(obj.name), (
            f"seed {seed}/{fault_seed}: {obj.name} diverged under "
            f"recoverable data faults"
        )


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    spes=st.sampled_from([1, 3, 4]),
    latency=st.sampled_from([1, 40, 150]),
    cached=st.booleans(),
)
def test_fuzz_machine_shape_never_changes_results(seed, spes, latency, cached):
    activity = random_activity(seed)
    reference = memory_of(activity, small_config(num_spes=2))
    cfg = (
        cached_config(spes) if cached else small_config(num_spes=spes)
    ).with_latency(latency)
    assert memory_of(activity, cfg) == reference, (
        f"seed {seed}: results depend on the machine shape"
    )
