"""Chaos matrix: injected faults change timing, never results.

The central guarantee of ``repro.faults`` is architectural transparency:
for any seed, a faulted run must retire the same threads with the same
memory contents as the fault-free run — only the cycle count (and the
fault counters) may differ.  These tests drive the three paper
benchmarks through a matrix of fault seeds and check exactly that.

Data faults extend the guarantee: *corrupting* faults (payload bit
flips, truncated transfers, stale Local Store reads, frame-store
corruption on the bus) are detected by checksums / per-store check
codes and recovered by bounded DMA re-fetch and thread re-execution —
so recoverable plans stay bit-identical too, and budget exhaustion
raises a structured :class:`DataCorruptionError` instead of silently
corrupting results.
"""

from __future__ import annotations

import pytest

from repro.bench.parallel import RunTask, run_many_detailed
from repro.bench.runner import run_workload
from repro.bench.scale import builders
from repro.cell.machine import Machine
from repro.compiler.passes import prefetch_transform
from repro.faults import DataCorruptionError
from repro.faults.plan import FaultPlan, FaultPlanError
from repro.sim.config import MachineConfig

BENCHMARKS = ("bitcnt", "mmul", "zoom")
SEEDS = (1, 2, 3)

#: Every fault class enabled at once, aggressively enough to fire on
#: test-scale runs but with bounded retries so fallbacks are reachable.
CHAOS = ("dma_delay=0.1,dma_drop=0.08,bus_delay=0.05,bus_dup=0.05,"
         "mem_stall=0.05,dma_max_retries=2")

#: Every corrupting fault class at once, with default recovery budgets.
#: Test-scale runs have few transfer/store opportunities, so the
#: probabilities are high to make every kind fire on every benchmark.
DATA = ("data_flip=0.3,data_truncate=0.15,data_ls_stale=0.15,"
        "data_store_corrupt=0.1")

#: Guaranteed corruption with zero recovery budget: the first verify
#: failure must escalate to a structured error.
UNRECOVERABLE = "seed=1,data_flip=1.0,data_max_refetches=0,data_max_reexecs=0"


def _run(name: str, config: MachineConfig):
    """Run the prefetch variant of ``name``; return (result, outputs)."""
    workload = builders("test")[name]()
    machine = Machine(config)
    machine.load(prefetch_transform(workload.activity))
    result = machine.run()
    outputs = {obj: machine.read_global(obj) for obj in workload.oracle}
    workload.verify(machine)
    return result, outputs


@pytest.fixture(scope="module")
def baselines():
    """Fault-free reference runs, one per benchmark."""
    return {name: _run(name, MachineConfig()) for name in BENCHMARKS}


class TestChaosMatrix:
    @pytest.mark.parametrize("name", BENCHMARKS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_faults_change_timing_never_results(self, name, seed, baselines):
        cfg = MachineConfig().with_faults(f"seed={seed},{CHAOS}")
        result, outputs = _run(name, cfg)
        clean, clean_outputs = baselines[name]

        # Bit-identical architectural results.
        assert outputs == clean_outputs
        # Faults inject pure delays, so they broadly cost cycles — but a
        # delayed FrameFreed can shift the DSE's load-based thread
        # placement into a slightly better schedule (a scheduling
        # anomaly).  Bound the anomaly instead of demanding monotonicity.
        assert result.cycles >= clean.cycles * 0.95
        # The spec is aggressive enough that something always fires.
        assert result.stats.faults.any_fired
        # Every transient failure was handled: retried or fell back.
        f = result.stats.faults
        if f.dma_drops:
            assert f.dma_retries + f.dma_fallbacks > 0
        # Duplicates never reach an endpoint twice.
        assert f.bus_duplicates_absorbed == f.bus_duplicates

    @pytest.mark.parametrize("name", BENCHMARKS)
    def test_same_seed_is_bit_identical(self, name):
        cfg = MachineConfig().with_faults(f"seed=1,{CHAOS}")
        first, first_out = _run(name, cfg)
        second, second_out = _run(name, cfg)
        assert first.cycles == second.cycles
        assert first.stats.faults == second.stats.faults
        assert first_out == second_out

    def test_permanent_failure_falls_back_without_wedging(self, baselines):
        # Every chunk attempt fails: after dma_max_retries each command
        # must fall back to blocking-read-equivalent timing and the run
        # must still complete with correct outputs.
        cfg = MachineConfig().with_faults("seed=3,dma_drop=1.0,"
                                          "dma_max_retries=2")
        result, outputs = _run("mmul", cfg)
        clean, clean_outputs = baselines["mmul"]
        assert outputs == clean_outputs
        assert result.stats.faults.dma_fallbacks > 0
        assert result.stats.faults.dma_retries > 0
        assert result.cycles > clean.cycles

    def test_sanitizer_holds_under_chaos(self):
        cfg = (
            MachineConfig()
            .with_faults(f"seed=2,{CHAOS}")
            .replace(sanitize=True)
        )
        result, _ = _run("mmul", cfg)  # InvariantViolation would escape
        assert result.stats.faults.any_fired


class TestDataFaultRecovery:
    """Corrupting faults: detect, recover, stay bit-identical."""

    @pytest.mark.parametrize("name", BENCHMARKS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_recoverable_faults_bit_identical(self, name, seed, baselines):
        cfg = MachineConfig().with_faults(f"seed={seed},{DATA}")
        result, outputs = _run(name, cfg)
        _clean, clean_outputs = baselines[name]

        f = result.stats.faults
        # The plan is aggressive enough that corruption always fires ...
        assert f.any_data_fired
        # ... and every firing was detected and recovered.
        assert f.any_recovered
        # The headline guarantee: recovery is architecturally invisible.
        assert outputs == clean_outputs

    @pytest.mark.parametrize("name", BENCHMARKS)
    def test_same_seed_same_recovery(self, name):
        cfg = MachineConfig().with_faults(f"seed=2,{DATA}")
        first, first_out = _run(name, cfg)
        second, second_out = _run(name, cfg)
        assert first.cycles == second.cycles
        assert first.stats.faults == second.stats.faults
        assert first_out == second_out

    def test_data_and_timing_faults_compose(self, baselines):
        cfg = MachineConfig().with_faults(f"seed=3,{CHAOS},{DATA}")
        result, outputs = _run("mmul", cfg)
        _clean, clean_outputs = baselines["mmul"]
        assert outputs == clean_outputs
        assert result.stats.faults.any_fired
        assert result.stats.faults.any_data_fired

    def test_sanitizer_holds_through_recovery(self):
        # Re-execution preserves SC bookkeeping; the sanitizer's
        # started-thread invariant cross-checks that no late producer
        # store slips into a re-executing thread's frame.
        cfg = (
            MachineConfig()
            .with_faults(f"seed=1,{DATA}")
            .replace(sanitize=True)
        )
        result, _ = _run("bitcnt", cfg)  # InvariantViolation would escape
        assert result.stats.faults.thread_reexecs > 0

    def test_unrecoverable_corruption_raises_structured_error(self):
        cfg = MachineConfig().with_faults(UNRECOVERABLE)
        workload = builders("test")["mmul"]()
        machine = Machine(cfg)
        machine.load(prefetch_transform(workload.activity))
        with pytest.raises(DataCorruptionError) as excinfo:
            machine.run()
        err = excinfo.value
        # The error names the failing transfer, not just "corruption".
        assert err.kind == "dma-transfer"
        assert err.site.startswith("lse")
        assert err.spe_id is not None
        assert err.tid is not None
        assert isinstance(err.fault_stats, dict)
        assert err.fault_stats["data_flips"] > 0
        assert "unrecoverable data corruption" in str(err)

    def test_recovery_counters_exported(self):
        from repro.bench.export import run_to_dict

        wl = builders("test")["bitcnt"]()
        cfg = MachineConfig().with_faults(f"seed=1,{DATA}")
        result = run_workload(wl, cfg, prefetch=True)
        faults = run_to_dict(result)["faults"]
        fired = (faults["data_flips"] + faults["data_truncations"]
                 + faults["data_stale_drops"]
                 + faults["data_store_corruptions"])
        assert fired > 0
        recovered = (faults["dma_refetches"] + faults["frame_scrubs"]
                     + faults["thread_reexecs"])
        assert recovered > 0


class TestDegradedManifests:
    def test_failure_carries_recovery_counters(self, tmp_path):
        # An unrecoverable run fails with DataCorruptionError; run_many
        # must surface the fault/recovery counters it carried so a
        # degraded manifest can report how far recovery got.
        workload = builders("test")["mmul"]()
        cfg = MachineConfig().with_faults(UNRECOVERABLE)
        task = RunTask(workload, cfg, prefetch=True)
        batch = run_many_detailed([task], jobs=1, retries=0)
        assert not batch.complete
        info = batch.failures[0]
        assert isinstance(info.error, DataCorruptionError)
        assert info.faults is not None
        assert info.faults["data_flips"] > 0
        assert info.faults["dma_verify_failures"] > 0


class TestCacheKeys:
    def test_fault_specs_participate_in_result_keys(self):
        workload = builders("test")["mmul"]()

        def key(cfg):
            return RunTask(workload, cfg, prefetch=True).key()

        clean = MachineConfig()
        faulted = clean.with_faults(f"seed=1,{CHAOS}")
        reseeded = clean.with_faults(f"seed=2,{CHAOS}")
        sanitized = clean.replace(sanitize=True)

        keys = {key(clean), key(faulted), key(reseeded), key(sanitized)}
        assert len(keys) == 4  # all distinct
        assert key(faulted) == key(clean.with_faults(f"seed=1,{CHAOS}"))

    def test_data_fault_specs_participate_in_result_keys(self):
        workload = builders("test")["mmul"]()

        def key(cfg):
            return RunTask(workload, cfg, prefetch=True).key()

        clean = MachineConfig()
        data = clean.with_faults(f"seed=1,{DATA}")
        rebudgeted = clean.with_faults(f"seed=1,{DATA},data_max_reexecs=9")
        assert len({key(clean), key(data), key(rebudgeted)}) == 3


class TestFaultPlanParsing:
    def test_round_trip(self):
        plan = FaultPlan.parse("seed=7,dma_drop=0.25,bus_dup=0.5")
        assert plan.seed == 7
        assert plan.dma_drop == 0.25
        assert plan.bus_dup == 0.5
        assert plan.active

    def test_default_plan_is_inert(self):
        assert not FaultPlan().active
        assert FaultPlan().describe() == "inactive"

    def test_unknown_key_rejected(self):
        with pytest.raises(FaultPlanError, match="known keys"):
            FaultPlan.parse("seed=1,dma_teleport=0.5")

    def test_bad_value_rejected(self):
        with pytest.raises(FaultPlanError, match="bad value"):
            FaultPlan.parse("dma_drop=lots")

    def test_probability_range_enforced(self):
        with pytest.raises(FaultPlanError, match="probability"):
            FaultPlan.parse("dma_drop=1.5")

    def test_backoff_must_be_positive(self):
        with pytest.raises(FaultPlanError, match="dma_backoff"):
            FaultPlan(dma_backoff=0)

    def test_data_keys_round_trip(self):
        plan = FaultPlan.parse(
            "seed=4,data_flip=0.25,data_truncate=0.1,data_ls_stale=0.05,"
            "data_store_corrupt=0.02,data_max_refetches=5,data_max_reexecs=1"
        )
        assert plan.data_flip == 0.25
        assert plan.data_max_refetches == 5
        assert plan.active and plan.data_active

    def test_timing_only_plan_is_not_data_active(self):
        plan = FaultPlan.parse(f"seed=1,{CHAOS}")
        assert plan.active and not plan.data_active

    def test_unknown_data_key_lists_all_valid_keys(self):
        with pytest.raises(FaultPlanError) as excinfo:
            FaultPlan.parse("data_scramble=0.5")
        message = str(excinfo.value)
        # The error names every valid key, data-fault keys included.
        for key in ("data_flip", "data_truncate", "data_ls_stale",
                    "data_store_corrupt", "data_max_refetches",
                    "data_max_reexecs", "dma_drop", "seed"):
            assert key in message

    def test_recovery_budgets_must_be_nonnegative(self):
        with pytest.raises(FaultPlanError, match="data_max_reexecs"):
            FaultPlan(data_max_reexecs=-1)
        with pytest.raises(FaultPlanError, match="data_max_refetches"):
            FaultPlan.parse("data_max_refetches=-2")
