"""Chaos matrix: injected faults change timing, never results.

The central guarantee of ``repro.faults`` is architectural transparency:
for any seed, a faulted run must retire the same threads with the same
memory contents as the fault-free run — only the cycle count (and the
fault counters) may differ.  These tests drive the three paper
benchmarks through a matrix of fault seeds and check exactly that.
"""

from __future__ import annotations

import pytest

from repro.bench.parallel import RunTask
from repro.bench.scale import builders
from repro.cell.machine import Machine
from repro.compiler.passes import prefetch_transform
from repro.faults.plan import FaultPlan, FaultPlanError
from repro.sim.config import MachineConfig

BENCHMARKS = ("bitcnt", "mmul", "zoom")
SEEDS = (1, 2, 3)

#: Every fault class enabled at once, aggressively enough to fire on
#: test-scale runs but with bounded retries so fallbacks are reachable.
CHAOS = ("dma_delay=0.1,dma_drop=0.08,bus_delay=0.05,bus_dup=0.05,"
         "mem_stall=0.05,dma_max_retries=2")


def _run(name: str, config: MachineConfig):
    """Run the prefetch variant of ``name``; return (result, outputs)."""
    workload = builders("test")[name]()
    machine = Machine(config)
    machine.load(prefetch_transform(workload.activity))
    result = machine.run()
    outputs = {obj: machine.read_global(obj) for obj in workload.oracle}
    workload.verify(machine)
    return result, outputs


@pytest.fixture(scope="module")
def baselines():
    """Fault-free reference runs, one per benchmark."""
    return {name: _run(name, MachineConfig()) for name in BENCHMARKS}


class TestChaosMatrix:
    @pytest.mark.parametrize("name", BENCHMARKS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_faults_change_timing_never_results(self, name, seed, baselines):
        cfg = MachineConfig().with_faults(f"seed={seed},{CHAOS}")
        result, outputs = _run(name, cfg)
        clean, clean_outputs = baselines[name]

        # Bit-identical architectural results.
        assert outputs == clean_outputs
        # Faults inject pure delays, so they broadly cost cycles — but a
        # delayed FrameFreed can shift the DSE's load-based thread
        # placement into a slightly better schedule (a scheduling
        # anomaly).  Bound the anomaly instead of demanding monotonicity.
        assert result.cycles >= clean.cycles * 0.95
        # The spec is aggressive enough that something always fires.
        assert result.stats.faults.any_fired
        # Every transient failure was handled: retried or fell back.
        f = result.stats.faults
        if f.dma_drops:
            assert f.dma_retries + f.dma_fallbacks > 0
        # Duplicates never reach an endpoint twice.
        assert f.bus_duplicates_absorbed == f.bus_duplicates

    @pytest.mark.parametrize("name", BENCHMARKS)
    def test_same_seed_is_bit_identical(self, name):
        cfg = MachineConfig().with_faults(f"seed=1,{CHAOS}")
        first, first_out = _run(name, cfg)
        second, second_out = _run(name, cfg)
        assert first.cycles == second.cycles
        assert first.stats.faults == second.stats.faults
        assert first_out == second_out

    def test_permanent_failure_falls_back_without_wedging(self, baselines):
        # Every chunk attempt fails: after dma_max_retries each command
        # must fall back to blocking-read-equivalent timing and the run
        # must still complete with correct outputs.
        cfg = MachineConfig().with_faults("seed=3,dma_drop=1.0,"
                                          "dma_max_retries=2")
        result, outputs = _run("mmul", cfg)
        clean, clean_outputs = baselines["mmul"]
        assert outputs == clean_outputs
        assert result.stats.faults.dma_fallbacks > 0
        assert result.stats.faults.dma_retries > 0
        assert result.cycles > clean.cycles

    def test_sanitizer_holds_under_chaos(self):
        cfg = (
            MachineConfig()
            .with_faults(f"seed=2,{CHAOS}")
            .replace(sanitize=True)
        )
        result, _ = _run("mmul", cfg)  # InvariantViolation would escape
        assert result.stats.faults.any_fired


class TestCacheKeys:
    def test_fault_specs_participate_in_result_keys(self):
        workload = builders("test")["mmul"]()

        def key(cfg):
            return RunTask(workload, cfg, prefetch=True).key()

        clean = MachineConfig()
        faulted = clean.with_faults(f"seed=1,{CHAOS}")
        reseeded = clean.with_faults(f"seed=2,{CHAOS}")
        sanitized = clean.replace(sanitize=True)

        keys = {key(clean), key(faulted), key(reseeded), key(sanitized)}
        assert len(keys) == 4  # all distinct
        assert key(faulted) == key(clean.with_faults(f"seed=1,{CHAOS}"))


class TestFaultPlanParsing:
    def test_round_trip(self):
        plan = FaultPlan.parse("seed=7,dma_drop=0.25,bus_dup=0.5")
        assert plan.seed == 7
        assert plan.dma_drop == 0.25
        assert plan.bus_dup == 0.5
        assert plan.active

    def test_default_plan_is_inert(self):
        assert not FaultPlan().active
        assert FaultPlan().describe() == "inactive"

    def test_unknown_key_rejected(self):
        with pytest.raises(FaultPlanError, match="known keys"):
            FaultPlan.parse("seed=1,dma_teleport=0.5")

    def test_bad_value_rejected(self):
        with pytest.raises(FaultPlanError, match="bad value"):
            FaultPlan.parse("dma_drop=lots")

    def test_probability_range_enforced(self):
        with pytest.raises(FaultPlanError, match="probability"):
            FaultPlan.parse("dma_drop=1.5")

    def test_backoff_must_be_positive(self):
        with pytest.raises(FaultPlanError, match="dma_backoff"):
            FaultPlan(dma_backoff=0)
