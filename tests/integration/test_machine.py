"""Machine assembly, PPE spawning, run control, result extraction."""

from __future__ import annotations

import pytest

from repro.cell.machine import Machine, run_activity
from repro.core.activity import GlobalObject, ObjRef, SpawnSpec, TLPActivity
from repro.isa.builder import ThreadBuilder
from repro.isa.program import BlockKind
from repro.sim.engine import SimulationLimitExceeded
from repro.testing import small_config
from repro.workloads import matmul


def tiny_activity():
    b = ThreadBuilder("w")
    out = b.slot("out")
    val = b.slot("val")
    with b.block(BlockKind.PL):
        b.load("rout", out)
        b.load("v", val)
    with b.block(BlockKind.EX):
        b.muli("v", "v", 2)
        b.write("rout", 0, "v")
        b.stop()
    return TLPActivity(
        name="tiny",
        templates=[b.build()],
        globals_=[GlobalObject.zeros("out", 1)],
        spawns=[SpawnSpec(template="w", stores={0: ObjRef("out"), 1: 21})],
    )


class TestLoadRun:
    def test_run_produces_result(self):
        m = Machine(small_config())
        m.load(tiny_activity())
        res = m.run()
        assert res.cycles > 0
        assert m.read_global("out") == [42]
        assert res.activity == "tiny"
        assert not res.prefetch

    def test_double_load_rejected(self):
        m = Machine(small_config())
        m.load(tiny_activity())
        with pytest.raises(RuntimeError, match="already"):
            m.load(tiny_activity())

    def test_run_without_load_rejected(self):
        with pytest.raises(RuntimeError, match="no activity"):
            Machine(small_config()).run()

    def test_read_global_without_load_rejected(self):
        with pytest.raises(RuntimeError):
            Machine(small_config()).read_global("x")

    def test_max_cycles_enforced(self):
        m = Machine(small_config())
        m.load(tiny_activity())
        with pytest.raises(SimulationLimitExceeded):
            m.run(max_cycles=3)

    def test_run_activity_helper(self):
        res = run_activity(tiny_activity(), small_config())
        assert res.cycles > 0

    def test_globals_loaded_into_memory(self):
        act = TLPActivity(
            name="g",
            templates=tiny_activity().templates,
            globals_=[GlobalObject("out", (9, 8, 7))],
            spawns=[SpawnSpec(template="w", stores={0: ObjRef("out"), 1: 1})],
        )
        m = Machine(small_config())
        m.load(act)
        obj = act.global_obj("out")
        assert m.memory.read_block(obj.addr, 3) == [9, 8, 7]


class TestPPE:
    def test_ppe_spawns_in_order(self):
        wl = matmul.build(n=4, threads=4)
        m = Machine(small_config(num_spes=2))
        m.load(wl.activity)
        m.run()
        # join + 4 workers
        assert len(m.ppe.spawned_handles) == 5
        assert m.ppe.done

    def test_spawnref_receives_real_handle(self):
        wl = matmul.build(n=4, threads=2)
        m = Machine(small_config(num_spes=2))
        m.load(wl.activity)
        m.run()
        wl.verify(m)  # workers stored into the join handle successfully


class TestDeterminism:
    def test_identical_runs_produce_identical_cycles(self):
        wl = matmul.build(n=4, threads=2)
        r1 = run_activity(wl.activity, small_config(num_spes=2))
        r2 = run_activity(wl.activity, small_config(num_spes=2))
        assert r1.cycles == r2.cycles
        assert r1.stats.mix.by_opcode == r2.stats.mix.by_opcode

    def test_breakdowns_partition_time_on_every_spu(self):
        wl = matmul.build(n=4, threads=4)
        res = run_activity(wl.activity, small_config(num_spes=4))
        for spu in res.stats.spus:
            assert spu.breakdown.total == res.cycles


class TestStatsCollection:
    def test_scheduler_stats_aggregate(self):
        wl = matmul.build(n=4, threads=4)
        res = run_activity(wl.activity, small_config(num_spes=2))
        # 5 spawned threads -> 5 frames freed eventually.
        assert res.stats.scheduler.ffrees == 5

    def test_bus_carried_traffic(self):
        wl = matmul.build(n=4, threads=2)
        res = run_activity(wl.activity, small_config(num_spes=2))
        assert res.stats.bus.transfers > 0
        assert res.stats.memory.read_requests == res.stats.mix.reads
