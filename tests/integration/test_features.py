"""Optional architecture features: virtual frames, XP pipelines, multi-node."""

from __future__ import annotations

import dataclasses

import pytest

from repro.bench.runner import run_workload
from repro.sim.config import MachineConfig, paper_config
from repro.sim.engine import SimulationDeadlock
from repro.sim.stats import Bucket
from repro.testing import small_config
from repro.workloads import bitcount, matmul, zoom


def lse_variant(base: MachineConfig, **changes) -> MachineConfig:
    return base.replace(lse=dataclasses.replace(base.lse, **changes))


class TestVirtualFramePointers:
    def test_tiny_frame_table_deadlocks_without_virtual(self):
        wl = bitcount.build(iterations=8, unroll=4)
        cfg = lse_variant(small_config(num_spes=2), num_frames=3)
        with pytest.raises(SimulationDeadlock):
            run_workload(wl, cfg, prefetch=False)

    def test_virtual_frames_complete_and_are_correct(self):
        wl = bitcount.build(iterations=8, unroll=4)
        cfg = lse_variant(
            small_config(num_spes=2), num_frames=3, virtual_frame_pointers=True
        )
        res = run_workload(wl, cfg, prefetch=False)
        assert res.cycles > 0

    def test_virtual_frames_with_prefetch(self):
        wl = bitcount.build(iterations=8, unroll=4)
        cfg = lse_variant(
            small_config(num_spes=2), num_frames=3, virtual_frame_pointers=True
        )
        run_workload(wl, cfg, prefetch=True)

    def test_virtual_depth_limit_restores_exhaustion(self):
        """A virtual pool that is itself tiny degrades back to physical
        behaviour: allocs queue behind blocked forkers and the fork storm
        wedges again.  The feature's value is precisely its depth."""
        wl = bitcount.build(iterations=8, unroll=4)
        cfg = lse_variant(
            small_config(num_spes=2),
            num_frames=3,
            virtual_frame_pointers=True,
            virtual_frame_depth=2,
        )
        with pytest.raises(SimulationDeadlock):
            run_workload(wl, cfg, prefetch=False)


class TestDualPipelines:
    def test_results_identical_with_xp_offload(self):
        wl = matmul.build(n=4, threads=4)
        cfg = lse_variant(small_config(num_spes=2), dual_pipelines=True)
        run_workload(wl, cfg, prefetch=True)  # verifies the oracle

    def test_xp_offload_removes_spu_prefetch_overhead(self):
        wl = zoom.build(n=8, z=2, threads=4)
        base_cfg = paper_config(2)
        dual_cfg = lse_variant(base_cfg, dual_pipelines=True)
        with_spu_pf = run_workload(wl, base_cfg, prefetch=True)
        with_xp_pf = run_workload(wl, dual_cfg, prefetch=True)
        assert (
            with_xp_pf.stats.average_breakdown.prefetch
            < with_spu_pf.stats.average_breakdown.prefetch
        )

    def test_xp_offload_never_runs_pf_on_spu(self):
        wl = matmul.build(n=4, threads=2)
        cfg = lse_variant(paper_config(1), dual_pipelines=True)
        res = run_workload(wl, cfg, prefetch=True)
        assert res.stats.average_breakdown.prefetch == 0
        # PF instructions never enter the SPU's dynamic mix.
        assert res.stats.mix.by_opcode["DMAGET"] == 0
        assert res.stats.mfc.commands > 0  # but the DMA happened

    def test_xp_ignored_without_pf_blocks(self):
        wl = matmul.build(n=4, threads=2)
        cfg = lse_variant(small_config(num_spes=1), dual_pipelines=True)
        run_workload(wl, cfg, prefetch=False)


class TestMultiNode:
    @pytest.mark.parametrize("nodes", [1, 2, 4])
    def test_results_correct_on_any_node_count(self, nodes):
        wl = matmul.build(n=8, threads=8)
        cfg = small_config(num_spes=4).replace(num_nodes=nodes)
        run_workload(wl, cfg, prefetch=False)

    def test_each_node_has_a_dse(self):
        from repro.cell.machine import Machine

        cfg = small_config(num_spes=4).replace(num_nodes=2)
        m = Machine(cfg)
        assert len(m.dses) == 2
        assert m.dses[0].spe_ids == [0, 1]
        assert m.dses[1].spe_ids == [2, 3]

    def test_inter_node_latency_slows_execution(self):
        # A small frame table forces the fork storm to spill onto node 1,
        # so scheduler traffic actually crosses the node boundary.
        wl = bitcount.build(iterations=8, unroll=4)
        near = lse_variant(
            small_config(num_spes=4).replace(
                num_nodes=2, inter_node_latency=0
            ),
            num_frames=8,
        )
        far = lse_variant(
            small_config(num_spes=4).replace(
                num_nodes=2, inter_node_latency=200
            ),
            num_frames=8,
        )
        t_near = run_workload(wl, near, prefetch=False).cycles
        t_far = run_workload(wl, far, prefetch=False).cycles
        assert t_far > t_near

    def test_full_node_forwards_to_neighbour(self):
        """With a tiny frame table on node 0, the fork storm must spill to
        node 1 via DSE forwarding."""
        wl = bitcount.build(iterations=8, unroll=4)
        cfg = small_config(num_spes=4).replace(num_nodes=2)
        cfg = lse_variant(cfg, num_frames=8)
        res = run_workload(wl, cfg, prefetch=False)
        from repro.cell.machine import Machine

        m = Machine(cfg)
        m.load(wl.activity)
        m.run()
        executed = [s.spu_stats.threads_executed for s in m.spes]
        assert sum(1 for e in executed if e) >= 3


class TestReadyPolicy:
    def test_fifo_policy_also_correct_for_flat_workloads(self):
        wl = matmul.build(n=4, threads=4)
        cfg = lse_variant(small_config(num_spes=2), ready_policy="fifo")
        run_workload(wl, cfg, prefetch=True)

    def test_lifo_bounds_fork_tree_frames(self):
        """LIFO (depth-first) keeps live frames bounded where FIFO lets
        the fork storm exhaust the table."""
        wl = bitcount.build(iterations=16, unroll=8)
        lifo = lse_variant(small_config(num_spes=1), num_frames=24,
                           ready_policy="lifo")
        run_workload(wl, lifo, prefetch=False)  # completes
