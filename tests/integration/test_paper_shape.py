"""The paper's headline claims, asserted at test scale.

The benchmark harness (benchmarks/) regenerates every table and figure;
this module keeps a distilled version of the same shape claims inside
the plain test suite, so `pytest tests/` alone certifies the story:

1. without prefetching, the memory-bound benchmarks drown in memory
   stalls (Fig. 5a);
2. the transformation eliminates them and yields order-of-magnitude
   speedups for mmul/zoom and a modest one for bitcnt (Figs. 6-8);
3. pipeline usage rises accordingly (Fig. 9);
4. at 1-cycle latency the benefit collapses (Sec. 4.3).
"""

from __future__ import annotations

import pytest

from repro.bench.runner import run_pair
from repro.sim.config import latency1_config, paper_config
from repro.sim.stats import Bucket
from repro.workloads import bitcount, matmul, zoom


@pytest.fixture(scope="module")
def pairs():
    return {
        "bitcnt": run_pair(bitcount.build(iterations=24), paper_config(4)),
        "mmul": run_pair(matmul.build(n=8, threads=8), paper_config(4)),
        "zoom": run_pair(zoom.build(n=8, z=4, threads=8), paper_config(4)),
    }


class TestHeadlineClaims:
    def test_memory_stalls_dominate_without_prefetching(self, pairs):
        for name in ("mmul", "zoom"):
            frac = pairs[name].base.stats.bucket_fractions()
            assert frac[Bucket.MEM_STALL] > 0.85, name

    def test_prefetching_eliminates_memory_stalls(self, pairs):
        for name in ("mmul", "zoom"):
            frac = pairs[name].prefetch.stats.bucket_fractions()
            assert frac[Bucket.MEM_STALL] < 0.02, name

    def test_order_of_magnitude_speedups(self, pairs):
        assert pairs["mmul"].speedup > 5
        assert pairs["zoom"].speedup > 5
        assert 1.0 < pairs["bitcnt"].speedup < 4.0

    def test_bitcnt_partial_decoupling(self, pairs):
        assert pairs["bitcnt"].decoupled_fraction == pytest.approx(8 / 12)

    def test_pipeline_usage_rises(self, pairs):
        for name, pair in pairs.items():
            assert (
                pair.prefetch.stats.average_pipeline_usage
                > pair.base.stats.average_pipeline_usage
            ), name

    def test_latency1_collapses_the_benefit(self, pairs):
        lat1 = run_pair(matmul.build(n=8, threads=8), latency1_config(4))
        assert lat1.speedup < pairs["mmul"].speedup / 3
