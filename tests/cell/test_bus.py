"""Interconnect bus: timing, arbitration, inter-node latency, stats."""

from __future__ import annotations

from repro.cell.bus import Bus, BusEndpoint
from repro.core.messages import Message, StoreMsg
from repro.sim.config import BusConfig
from repro.sim.engine import Engine


class Sink(BusEndpoint):
    def __init__(self, node_id: int = 0) -> None:
        self.node_id = node_id
        self.received: list[tuple[int, Message]] = []
        self.engine: Engine | None = None

    def deliver(self, msg: Message) -> None:
        assert self.engine is not None
        self.received.append((self.engine.now, msg))


def make_bus(**kw):
    eng = Engine()
    cfg = BusConfig(**{k: v for k, v in kw.items() if k != "inter_node"})
    bus = eng.register(
        Bus("bus", cfg, inter_node_latency=kw.get("inter_node", 0))
    )
    return eng, bus


def msg(size: int = 16) -> Message:
    return StoreMsg(handle=0, slot=0, value=size)  # 16 B on the wire


class TestTiming:
    def test_delivery_latency(self):
        eng, bus = make_bus(num_buses=1, bytes_per_cycle=8)
        sink = Sink()
        sink.engine = eng
        bus.send(None, sink, msg())  # 16 B -> 2 cycles + 1 arb
        eng.drain()
        # Granted at cycle 1 (first tick), finish = 1 + 1 + 2 = 4.
        assert sink.received[0][0] == 4

    def test_parallel_buses_carry_parallel_transfers(self):
        eng, bus = make_bus(num_buses=2, bytes_per_cycle=8)
        sink = Sink()
        sink.engine = eng
        for _ in range(2):
            bus.send(None, sink, msg())
        eng.drain()
        t1, t2 = (t for t, _ in sink.received)
        assert t1 == t2  # both granted in the same cycle

    def test_single_bus_serializes(self):
        eng, bus = make_bus(num_buses=1, bytes_per_cycle=8)
        sink = Sink()
        sink.engine = eng
        for _ in range(3):
            bus.send(None, sink, msg())
        eng.drain()
        times = [t for t, _ in sink.received]
        assert times == sorted(times)
        assert len(set(times)) == 3  # 2-cycle occupancy each

    def test_inter_node_latency_added(self):
        eng, bus = make_bus(num_buses=1, bytes_per_cycle=8, inter_node=20)
        near, far = Sink(node_id=0), Sink(node_id=1)
        near.engine = far.engine = eng
        src = Sink(node_id=0)
        bus.send(src, near, msg())
        eng.drain()
        t_near = near.received[0][0]
        eng2, bus2 = make_bus(num_buses=1, bytes_per_cycle=8, inter_node=20)
        far.engine = eng2
        bus2.send(src, far, msg())
        eng2.drain()
        t_far = far.received[0][0]
        assert t_far == t_near + 20


class TestStats:
    def test_counts_transfers_and_bytes(self):
        eng, bus = make_bus()
        sink = Sink()
        sink.engine = eng
        for _ in range(5):
            bus.send(None, sink, msg())
        eng.drain()
        assert bus.stats.transfers == 5
        assert bus.stats.bytes_moved == 5 * 16

    def test_queue_wait_accrues_under_contention(self):
        eng, bus = make_bus(num_buses=1, bytes_per_cycle=1)  # slow bus
        sink = Sink()
        sink.engine = eng
        for _ in range(4):
            bus.send(None, sink, msg())
        eng.drain()
        assert bus.stats.queue_wait_cycles > 0

    def test_describe_state(self):
        _eng, bus = make_bus()
        assert "queued" in bus.describe_state()
