"""The optional per-SPE data cache: indexing, LRU, integration."""

from __future__ import annotations

import dataclasses

import pytest

from repro.bench.runner import run_workload
from repro.core.activity import GlobalObject, ObjRef
from repro.isa.builder import ThreadBuilder
from repro.isa.program import BlockKind
from repro.sim.config import CacheConfig, cached_config, paper_config
from repro.testing import run_program, small_config
from repro.workloads import matmul


class TestConfig:
    def test_defaults_disabled(self):
        assert not paper_config().cache.enabled
        assert cached_config().cache.enabled

    def test_geometry(self):
        cfg = CacheConfig(size_bytes=8192, line_bytes=64, ways=2)
        assert cfg.num_lines == 128
        assert cfg.num_sets == 64

    def test_validation(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=100, line_bytes=64)
        with pytest.raises(ValueError):
            CacheConfig(line_bytes=6)
        with pytest.raises(ValueError):
            CacheConfig(ways=0)
        with pytest.raises(ValueError):
            CacheConfig(hit_latency=0)


def cache_cfg(**kw):
    cfg = small_config()
    return cfg.replace(
        cache=dataclasses.replace(cfg.cache, enabled=True, **kw)
    ).with_latency(150)


def reader(indices, words=32):
    b = ThreadBuilder("reader")
    b.slot("out")
    b.slot("src")
    with b.block(BlockKind.PL):
        b.load("rout", "out")
        b.load("rsrc", "src")
    with b.block(BlockKind.EX):
        b.li("acc", 0)
        for i in indices:
            b.read("v", "rsrc", 4 * i)
            b.add("acc", "acc", "v")
        b.write("rout", 0, "acc")
        b.stop()
    return b


def run_reader(indices, config, words=32):
    data = tuple(range(1, words + 1))
    res = run_program(
        reader(indices, words),
        stores={"out": ObjRef("out"), "src": ObjRef("src")},
        globals_=[GlobalObject("src", data), GlobalObject.zeros("out", 1)],
        config=config,
    )
    assert res.word("out") == sum(data[i] for i in indices)
    return res


class TestBehaviour:
    def test_repeat_access_hits(self):
        res = run_reader([0] * 10, cache_cfg())
        stats = res.machine.spes[0].cache_stats
        assert stats.misses == 1
        assert stats.hits == 9
        assert stats.hit_rate == pytest.approx(0.9)

    def test_spatial_locality_within_line(self):
        # 16 words = one 64 B line: one miss, fifteen hits.
        res = run_reader(list(range(16)), cache_cfg(line_bytes=64))
        stats = res.machine.spes[0].cache_stats
        assert stats.misses == 1 and stats.hits == 15

    def test_distinct_lines_miss_separately(self):
        res = run_reader([0, 16, 0, 16], cache_cfg(line_bytes=64))
        stats = res.machine.spes[0].cache_stats
        assert stats.misses == 2 and stats.hits == 2

    def test_lru_eviction(self):
        # 1 set x 2 ways: three distinct lines thrash.
        cfg = cache_cfg(size_bytes=128, line_bytes=64, ways=2)
        res = run_reader([0, 16, 0, 16, 32, 0], cfg, words=48)
        stats = res.machine.spes[0].cache_stats
        # lines A, B hit on re-touch; C evicts A (LRU); A misses again.
        assert stats.misses == 4
        assert stats.hits == 2

    def test_cache_faster_than_uncached(self):
        indices = [i % 16 for i in range(64)]
        cached = run_reader(indices, cache_cfg())
        uncached = run_reader(indices, small_config().with_latency(150))
        assert cached.cycles < uncached.cycles / 3

    def test_write_through_keeps_read_after_write_coherent(self):
        b = ThreadBuilder("raw")
        b.slot("out")
        b.slot("src")
        with b.block(BlockKind.PL):
            b.load("rout", "out")
            b.load("rsrc", "src")
        with b.block(BlockKind.EX):
            b.read("v", "rsrc", 0)      # fill the line
            b.li("nv", 777)
            b.write("rsrc", 0, "nv")    # write-through + line update
            b.read("w", "rsrc", 0)      # must see 777 (from the cache)
            b.write("rout", 0, "w")
            b.stop()
        res = run_program(
            b,
            stores={"out": ObjRef("out"), "src": ObjRef("src")},
            globals_=[GlobalObject("src", (1, 2)), GlobalObject.zeros("out", 1)],
            config=cache_cfg(),
        )
        assert res.word("out") == 777


class TestWorkloadIntegration:
    def test_mmul_correct_with_cache(self):
        wl = matmul.build(n=4, threads=2)
        run_workload(wl, cached_config(2), prefetch=False)

    def test_cache_recovers_most_memory_stalls(self):
        wl = matmul.build(n=8, threads=8)
        base = run_workload(wl, paper_config(4), prefetch=False)
        cached = run_workload(wl, cached_config(4), prefetch=False)
        assert cached.cycles < base.cycles / 5

    def test_prefetch_competitive_with_cache(self):
        """The paper's conclusion: prefetching 'can almost eliminate the
        need for caches' — it must land in the same ballpark."""
        wl = matmul.build(n=8, threads=8)
        cached = run_workload(wl, cached_config(4), prefetch=False)
        prefetched = run_workload(wl, paper_config(4), prefetch=True)
        assert prefetched.cycles < 1.5 * cached.cycles

    def test_dma_bypasses_the_cache(self):
        from repro.cell.machine import Machine
        from repro.compiler.passes import prefetch_transform

        wl = matmul.build(n=4, threads=2)
        m = Machine(cached_config(2))
        m.load(prefetch_transform(wl.activity))
        res = m.run()
        wl.verify(m)
        # The transformed mmul has no scalar READs; all traffic is DMA,
        # which bypasses the cache entirely.
        assert res.stats.mix.reads == 0
        for spe in m.spes:
            assert spe.cache_stats.hits == 0
            assert spe.cache_stats.misses == 0
