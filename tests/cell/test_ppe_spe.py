"""PPE spawning behaviour and SPE bus-endpoint routing."""

from __future__ import annotations

import pytest

from repro.cell.machine import Machine
from repro.cell.spe import SPE
from repro.core.activity import GlobalObject, ObjRef, SpawnSpec, TLPActivity
from repro.core.messages import FrameFreed, ReadResponse, StoreMsg, WriteAck
from repro.isa.builder import ThreadBuilder
from repro.isa.program import BlockKind
from repro.testing import small_config


def writer_template(name="w"):
    b = ThreadBuilder(name)
    b.slot("out")
    b.slot("val")
    with b.block(BlockKind.PL):
        b.load("rout", 0)
        b.load("v", 1)
    with b.block(BlockKind.EX):
        b.write("rout", 0, "v")
        b.stop()
    return b.build()


class TestPPE:
    def make_machine(self, spawns):
        act = TLPActivity(
            name="t",
            templates=[writer_template()],
            globals_=[GlobalObject.zeros("out", 4)],
            spawns=spawns,
        )
        m = Machine(small_config(num_spes=2))
        m.load(act)
        return m, act

    def test_sequential_spawns_in_declared_order(self):
        spawns = [
            SpawnSpec(template="w", stores={0: ObjRef("out", offset=4 * i),
                                            1: 100 + i})
            for i in range(3)
        ]
        m, act = self.make_machine(spawns)
        m.run()
        assert m.read_global("out")[:3] == [100, 101, 102]
        assert len(m.ppe.spawned_handles) == 3

    def test_done_only_after_all_stores_sent(self):
        m, act = self.make_machine(
            [SpawnSpec(template="w", stores={0: ObjRef("out"), 1: 7})]
        )
        assert not m.ppe.done
        m.run()
        assert m.ppe.done

    def test_spawn_with_no_stores_fires_immediately(self):
        b = ThreadBuilder("noarg")
        with b.block(BlockKind.EX):
            b.stop()
        act = TLPActivity(name="n", templates=[b.build()],
                          spawns=[SpawnSpec(template="noarg")])
        m = Machine(small_config(num_spes=1))
        m.load(act)
        m.run()
        assert m.threads_completed == 1

    def test_unsolicited_response_rejected(self):
        m, _ = self.make_machine(
            [SpawnSpec(template="w", stores={0: ObjRef("out"), 1: 1})]
        )
        from repro.core.messages import FallocResponse

        with pytest.raises(RuntimeError, match="unsolicited"):
            m.ppe.deliver(FallocResponse(request_id=1, handle=0, tid=0))

    def test_describe_state(self):
        m, _ = self.make_machine(
            [SpawnSpec(template="w", stores={0: ObjRef("out"), 1: 1})]
        )
        assert "spawn" in m.ppe.describe_state()


class TestSPERouting:
    def test_unroutable_message_raises(self):
        spe = SPE(0, small_config(num_spes=1))
        with pytest.raises(RuntimeError, match="route"):
            spe.deliver(FrameFreed(spe_id=0))

    def test_read_response_reaches_spu(self):
        m = Machine(small_config(num_spes=1))
        spe = m.spes[0]
        # A ReadResponse with no pending READ is an architectural bug and
        # must fault loudly rather than vanish.
        from repro.cell.spu import SpuFault

        with pytest.raises(SpuFault):
            spe.deliver(ReadResponse(reply_key=0, value=1))

    def test_write_ack_without_outstanding_write_faults(self):
        m = Machine(small_config(num_spes=1))
        from repro.cell.spu import SpuFault

        with pytest.raises(SpuFault, match="credit underflow"):
            m.spes[0].deliver(WriteAck(requester_spe=0))

    def test_store_message_routes_to_lse(self):
        m = Machine(small_config(num_spes=1))
        spe = m.spes[0]
        before = len(spe.lse._queue)
        spe.deliver(StoreMsg(handle=0, slot=0, value=1))
        assert len(spe.lse._queue) == before + 1

    def test_node_id_follows_config(self):
        cfg = small_config(num_spes=4).replace(num_nodes=2)
        spes = [SPE(i, cfg) for i in range(4)]
        assert [s.node_id for s in spes] == [0, 0, 1, 1]


class TestDSEUnit:
    def test_round_robin_cycles(self):
        from repro.core.dse import DSE
        from repro.sim.config import DSEConfig

        dse = DSE("d", 0, [0, 1, 2], DSEConfig(policy="round-robin"),
                  frames_per_lse=8)
        picks = [dse._pick_spe() for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_least_loaded_prefers_idle(self):
        from repro.core.dse import DSE
        from repro.sim.config import DSEConfig

        dse = DSE("d", 0, [0, 1], DSEConfig(), frames_per_lse=8)
        dse.load[0] = 5
        assert dse._pick_spe() == 1

    def test_least_loaded_ties_break_by_id(self):
        from repro.core.dse import DSE
        from repro.sim.config import DSEConfig

        dse = DSE("d", 0, [3, 1, 2], DSEConfig(), frames_per_lse=8)
        assert dse._pick_spe() == 1

    def test_node_full_detection(self):
        from repro.core.dse import DSE
        from repro.sim.config import DSEConfig

        dse = DSE("d", 0, [0, 1], DSEConfig(), frames_per_lse=2)
        assert not dse._node_full()
        dse.load[0] = dse.load[1] = 2
        assert dse._node_full()

    def test_empty_spe_list_rejected(self):
        from repro.core.dse import DSE
        from repro.sim.config import DSEConfig

        with pytest.raises(ValueError):
            DSE("d", 0, [], DSEConfig(), frames_per_lse=2)
