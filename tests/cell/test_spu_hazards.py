"""SPU pipeline corner cases: hazards, issue pairing, penalties, faults."""

from __future__ import annotations

import pytest

from repro.core.activity import GlobalObject, ObjRef
from repro.isa.builder import ThreadBuilder
from repro.isa.program import BlockKind
from repro.testing import run_program, small_config


def harness(body, words: int = 4, config=None, stores=None, globals_=None):
    """Build out-writer program with `body(b)` as the EX midsection."""
    b = ThreadBuilder("t")
    b.slot("out")
    for name in (stores or {}):
        if name != "out":
            b.slot(name)
    with b.block(BlockKind.PL):
        b.load("rout", "out")
        for name in (stores or {}):
            if name != "out":
                b.load(f"r_{name}", name)
    with b.block(BlockKind.EX):
        body(b)
        b.stop()
    all_stores = {"out": ObjRef("out")}
    all_stores.update(stores or {})
    return run_program(
        b,
        stores=all_stores,
        globals_=[GlobalObject.zeros("out", words)] + (globals_ or []),
        config=config,
    )


class TestHazards:
    def test_raw_hazard_through_multiply(self):
        """MUL has a 2-cycle latency; the dependent ADD must still see the
        correct value (the scoreboard stalls, never forwards stale data)."""
        def body(b):
            b.li("x", 6)
            b.li("y", 7)
            b.mul("z", "x", "y")
            b.addi("z", "z", 1)  # immediately dependent
            b.write("rout", 0, "z")

        assert harness(body).word("out") == 43

    def test_waw_hazard_keeps_final_value(self):
        def body(b):
            b.li("x", 1)
            b.muli("x", "x", 5)   # in-flight writer of x
            b.li("x", 9)          # WAW: must wait, then win
            b.write("rout", 0, "x")

        assert harness(body).word("out") == 9

    def test_div_latency_respected(self):
        def body(b):
            b.li("x", 100)
            b.li("y", 7)
            b.div("q", "x", "y")
            b.mod("r", "x", "y")
            b.write("rout", 0, "q")
            b.write("rout", 4, "r")

        res = harness(body)
        assert res.read_global("out")[:2] == [14, 2]


class TestIssuePairing:
    def _cycles(self, body):
        return harness(body).cycles

    def test_two_mem_ops_cannot_pair(self):
        """Back-to-back LS stores serialize (one MEM slot per cycle)."""
        def mem_heavy(b):
            b.li("p", 100 * 1024)
            b.li("v", 1)
            for i in range(12):
                b.lstore("p", 4 * i, "v")

        def mixed(b):
            b.li("p", 100 * 1024)
            b.li("v", 1)
            for i in range(6):
                b.lstore("p", 4 * i, "v")
                b.addi("v", "v", 0)  # independent ALU op can pair

        # Twelve pure-MEM ops need >= 12 issue cycles; six MEM + six ALU
        # pairs need only ~6 - the mixed version must not be slower.
        assert self._cycles(mixed) <= self._cycles(mem_heavy)

    def test_taken_branch_pays_penalty(self):
        def straight(b):
            for _ in range(12):
                b.addi("x", "x", 1)
            b.write("rout", 0, "x")

        def loopy(b):
            b.li("x", 0)
            b.label("top")
            b.addi("x", "x", 1)
            b.slti("c", "x", 12)
            b.bnez("c", "top")  # 11 taken branches
            b.write("rout", 0, "x")

        t_straight = harness(straight).cycles
        t_loopy = harness(loopy).cycles
        assert harness(loopy).word("out") == 12
        # Each taken branch costs the configured penalty on top of the
        # extra loop instructions.
        cfg_penalty = small_config().spu.branch_taken_penalty
        assert t_loopy >= t_straight + 11 * cfg_penalty


class TestStoreQueue:
    def test_write_burst_exceeding_queue_still_correct(self):
        def body(b):
            for i in range(24):  # 3x the 8-entry store queue
                b.li("v", i)
                b.write("rout", 4 * i, "v")

        res = harness(body, words=24)
        assert res.read_global("out") == list(range(24))

    def test_write_burst_accrues_mem_stall_on_full_queue(self):
        import dataclasses

        def body(b):
            for i in range(24):
                b.li("v", i)
                b.write("rout", 4 * i, "v")

        cfg = small_config()
        cfg = cfg.replace(
            spu=dataclasses.replace(cfg.spu, store_queue_size=1)
        )
        res = harness(body, words=24, config=cfg)
        assert res.read_global("out") == list(range(24))
        assert res.result.stats.spus[0].breakdown.mem_stall > 0


class TestRegisterFileHygiene:
    def test_registers_zeroed_between_threads(self):
        """A second thread must not observe the first thread's registers."""
        from repro.core.activity import SpawnSpec
        from repro.testing import run_templates

        t1 = ThreadBuilder("poison")
        t1.slot("x")
        with t1.block(BlockKind.PL):
            t1.load("v", 0)
        with t1.block(BlockKind.EX):
            for i in range(20):
                t1.li(f"g{i}", 0xDEAD)
            t1.stop()

        t2 = ThreadBuilder("reader")
        t2.slot("out")
        with t2.block(BlockKind.PL):
            t2.load("rout", 0)
        with t2.block(BlockKind.EX):
            # Registers it never wrote must read as zero.
            t2.add("s", "a", "b")
            t2.write("rout", 0, "s")
            t2.stop()

        res = run_templates(
            templates=[t1.build(), t2.build()],
            spawns=[
                SpawnSpec(template="poison", stores={0: 1}),
                SpawnSpec(template="reader", stores={0: ObjRef("out")}),
            ],
            globals_=[GlobalObject.zeros("out", 1)],
            config=small_config(num_spes=1),
        )
        assert res.word("out") == 0

    def test_missing_stop_faults(self):
        from repro.cell.spu import SpuFault
        from repro.isa.instructions import Instruction
        from repro.isa.opcodes import Op
        from repro.isa.program import ThreadProgram

        # Build a program whose branch skips over STOP's predecessor but
        # still ends in STOP, then force the PC past the end by patching
        # the machine is hard; instead check the fault path directly via
        # an EX-only program where the branch target is the last legal
        # index and execution would fall through past STOP -- which the
        # validator prevents; so this asserts the validator, the runtime
        # guard being covered by construction.
        with pytest.raises(Exception):
            ThreadProgram(
                name="bad",
                blocks={BlockKind.EX: (Instruction(op=Op.NOP),)},
            )
