"""SPU execution: golden mini-programs exercising every instruction class.

These run complete thread programs on a 1-SPE machine via
:func:`repro.testing.run_program` and check both results (values written
to main memory) and timing-model properties (stall attribution, dual
issue, blocking READs).
"""

from __future__ import annotations

import pytest

from repro.core.activity import GlobalObject, ObjRef
from repro.isa.builder import ThreadBuilder
from repro.isa.program import BlockKind
from repro.sim.stats import Bucket
from repro.testing import run_program, small_config


def out_obj(words: int = 4):
    return GlobalObject.zeros("out", words)


def writer(name="t"):
    """Builder with an ``out`` pointer preloaded into ``rout``."""
    b = ThreadBuilder(name)
    b.slot("out")
    return b


def finish(b: ThreadBuilder, *values: str):
    """EX epilogue writing the given registers to out[0..]."""
    for i, reg in enumerate(values):
        b.write("rout", 4 * i, reg)
    b.stop()


def run(b: ThreadBuilder, words: int = 4, **kw):
    return run_program(
        b,
        stores={"out": ObjRef("out"), **kw.pop("stores", {})},
        globals_=[out_obj(words)] + kw.pop("globals_", []),
        **kw,
    )


class TestAluPrograms:
    def test_arithmetic_chain(self):
        b = writer()
        with b.block(BlockKind.PL):
            b.load("rout", "out")
        with b.block(BlockKind.EX):
            b.li("x", 10)
            b.muli("x", "x", 7)      # 70
            b.subi("x", "x", 5)      # 65
            b.li("y", 3)
            b.div("z", "x", "y")     # 21
            b.mod("w", "x", "y")     # 2
            finish(b, "z", "w")
        res = run(b)
        assert res.read_global("out")[:2] == [21, 2]

    def test_logic_and_shifts(self):
        b = writer()
        with b.block(BlockKind.PL):
            b.load("rout", "out")
        with b.block(BlockKind.EX):
            b.li("x", 0b1100)
            b.andi("a", "x", 0b1010)   # 0b1000
            b.ori("o", "x", 0b0011)    # 0b1111
            b.xori("e", "x", 0b1111)   # 0b0011
            b.shli("s", "x", 2)        # 0b110000
            b.shri("r", "x", 2)        # 0b11
            finish(b, "a", "o", "e", "s")
        assert run(b).read_global("out") == [0b1000, 0b1111, 0b0011, 0b110000]

    def test_branch_loop(self):
        b = writer()
        n = b.slot("n")
        with b.block(BlockKind.PL):
            b.load("rout", "out")
            b.load("rn", n)
        with b.block(BlockKind.EX):
            b.li("acc", 1)
            b.label("top")
            b.beqz("rn", "end")
            b.muli("acc", "acc", 2)
            b.subi("rn", "rn", 1)
            b.jmp("top")
            b.label("end")
            finish(b, "acc")
        res = run(b, stores={"n": 10})
        assert res.word("out") == 1024

    def test_comparisons_drive_branches(self):
        b = writer()
        with b.block(BlockKind.PL):
            b.load("rout", "out")
        with b.block(BlockKind.EX):
            b.li("x", 5)
            b.li("y", 9)
            b.li("r", 0)
            b.blt("y", "x", "skip")
            b.li("r", 1)
            b.label("skip")
            b.min_("lo", "x", "y")
            b.max_("hi", "x", "y")
            finish(b, "r", "lo", "hi")
        assert run(b).read_global("out")[:3] == [1, 5, 9]


class TestMemoryPrograms:
    def test_read_write_roundtrip_through_main_memory(self):
        b = writer()
        src = b.slot("src")
        with b.block(BlockKind.PL):
            b.load("rout", "out")
            b.load("rsrc", src)
        with b.block(BlockKind.EX):
            b.read("v", "rsrc", 0)
            b.read("w", "rsrc", 4)
            b.add("v", "v", "w")
            finish(b, "v")
        res = run(
            b,
            stores={"src": ObjRef("src")},
            globals_=[GlobalObject("src", (30, 12))],
        )
        assert res.word("out") == 42

    def test_read_blocks_pipeline_and_accrues_mem_stall(self):
        b = writer()
        src = b.slot("src")
        with b.block(BlockKind.PL):
            b.load("rout", "out")
            b.load("rsrc", src)
        with b.block(BlockKind.EX):
            for i in range(8):
                b.read("v", "rsrc", 4 * i)
            finish(b, "v")
        res = run(
            b,
            stores={"src": ObjRef("src")},
            globals_=[GlobalObject("src", tuple(range(8)))],
            config=small_config(num_spes=1).with_latency(150),
        )
        bd = res.result.stats.spus[0].breakdown
        # 8 blocking READs at latency 150 dominate everything else.
        assert bd.mem_stall > 8 * 150
        assert bd.fraction(Bucket.MEM_STALL) > 0.8

    def test_lstore_lload_scratchpad(self):
        b = writer()
        with b.block(BlockKind.PL):
            b.load("rout", "out")
        with b.block(BlockKind.EX):
            # Stage values in the prefetch region of the LS directly.
            b.li("p", 100 * 1024)
            b.li("v", 77)
            b.lstore("p", 0, "v")
            b.lload("w", "p", 0)
            finish(b, "w")
        assert run(b).word("out") == 77

    def test_posted_writes_complete_before_results_read(self):
        b = writer(name="burst")
        with b.block(BlockKind.PL):
            b.load("rout", "out")
        with b.block(BlockKind.EX):
            for i in range(16):
                b.li("v", i * i)
                b.write("rout", 4 * i, "v")
            b.stop()
        res = run(b, words=16)
        assert res.read_global("out") == [i * i for i in range(16)]


class TestFrameTraffic:
    def test_pl_loads_see_spawn_stores(self):
        b = writer()
        a, c = b.slot("a"), b.slot("b")
        with b.block(BlockKind.PL):
            b.load("rout", "out")
            b.load("x", a)
            b.load("y", c)
        with b.block(BlockKind.EX):
            b.add("x", "x", "y")
            finish(b, "x")
        res = run(b, stores={"a": 1000, "b": 337})
        assert res.word("out") == 1337

    def test_ls_stalls_attributed_for_dependent_loads(self):
        b = writer()
        s = b.slot("s")
        with b.block(BlockKind.PL):
            b.load("rout", "out")
            b.load("x", s)  # 6-cycle LS latency
        with b.block(BlockKind.EX):
            b.addi("x", "x", 1)  # immediately dependent -> LS stall
            finish(b, "x")
        res = run(b, stores={"s": 1})
        assert res.result.stats.spus[0].breakdown.ls_stall > 0


class TestIssueRules:
    def test_dual_issue_pairs_mem_and_alu(self):
        b = writer()
        with b.block(BlockKind.PL):
            b.load("rout", "out")
        with b.block(BlockKind.EX):
            # Independent ALU/LSTORE pairs that can dual-issue.
            b.li("p", 100 * 1024)
            for i in range(10):
                b.li(f"v{i}", i)
                b.lstore("p", 4 * i, f"v{i}")
            b.li("x", 1)
            finish(b, "x")
        res = run(b)
        assert res.result.stats.spus[0].dual_issue_cycles > 0

    def test_instruction_mix_counts_dynamic_executions(self):
        b = writer()
        with b.block(BlockKind.PL):
            b.load("rout", "out")
        with b.block(BlockKind.EX):
            b.li("i", 3)
            b.label("top")
            b.subi("i", "i", 1)
            b.bnez("i", "top")
            b.li("x", 0)
            finish(b, "x")
        res = run(b)
        mix = res.result.stats.mix
        assert mix.by_opcode["SUBI"] == 3
        assert mix.by_opcode["BNEZ"] == 3

    def test_breakdown_partitions_total_time(self):
        b = writer()
        with b.block(BlockKind.PL):
            b.load("rout", "out")
        with b.block(BlockKind.EX):
            b.li("x", 9)
            finish(b, "x")
        res = run(b)
        bd = res.result.stats.spus[0].breakdown
        assert bd.total == res.cycles


class TestFaults:
    def test_division_by_zero_surfaces(self):
        from repro.isa.semantics import ArithmeticFault

        b = writer()
        with b.block(BlockKind.PL):
            b.load("rout", "out")
        with b.block(BlockKind.EX):
            b.li("x", 1)
            b.li("z", 0)
            b.div("x", "x", "z")
            finish(b, "x")
        with pytest.raises(ArithmeticFault):
            run(b)
