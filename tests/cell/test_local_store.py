"""Local Store storage, ports, and the prefetch-buffer allocator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cell.local_store import (
    AllocationError,
    LocalStore,
    LocalStoreFault,
    LSAllocator,
)
from repro.sim.config import LocalStoreConfig


def make_ls(**kw) -> LocalStore:
    return LocalStore(LocalStoreConfig(**kw))


class TestStorage:
    def test_read_write_roundtrip(self):
        ls = make_ls()
        ls.write_word(0x100, 42)
        assert ls.read_word(0x100) == 42

    def test_unwritten_reads_zero(self):
        assert make_ls().read_word(0) == 0

    def test_unaligned_rejected(self):
        ls = make_ls()
        with pytest.raises(LocalStoreFault, match="unaligned"):
            ls.read_word(2)

    def test_out_of_range_rejected(self):
        ls = make_ls()
        with pytest.raises(LocalStoreFault):
            ls.write_word(ls.config.size, 1)
        with pytest.raises(LocalStoreFault):
            ls.read_word(-4)

    def test_block_roundtrip(self):
        ls = make_ls()
        ls.write_block(0x40, (1, 2, 3, 4))
        assert ls.read_block(0x40, 4) == [1, 2, 3, 4]

    def test_block_overflow_rejected(self):
        ls = make_ls()
        with pytest.raises(LocalStoreFault, match="overflows"):
            ls.write_block(ls.config.size - 8, (1, 2, 3, 4))


class TestPorts:
    def test_ports_limit_per_cycle(self):
        ls = make_ls(ports=3)
        assert ls.reserve_port(10)
        assert ls.reserve_port(10)
        assert ls.reserve_port(10)
        assert not ls.reserve_port(10)
        assert ls.reserve_port(11)

    def test_next_free_port_cycle(self):
        ls = make_ls(ports=1)
        ls.reserve_port(5)
        ls.reserve_port(6)
        assert ls.next_free_port_cycle(5) == 7

    def test_reservation_table_is_pruned(self):
        ls = make_ls(ports=1)
        for c in range(5000):
            ls.reserve_port(c)
        assert len(ls._ports_used) <= 4096 + 1


class TestAllocator:
    def test_alloc_free_roundtrip(self):
        a = LSAllocator(base=0x1000, size=0x1000)
        p = a.alloc(100)
        assert 0x1000 <= p < 0x2000
        a.free(p, 100)
        assert a.free_bytes == 0x1000

    def test_rounds_to_granule(self):
        a = LSAllocator(base=0, size=256)
        a.alloc(1)
        assert a.allocated_bytes == LSAllocator.GRANULE

    def test_exhaustion_raises(self):
        a = LSAllocator(base=0, size=64)
        a.alloc(64)
        with pytest.raises(AllocationError):
            a.alloc(16)

    def test_allocations_do_not_overlap(self):
        a = LSAllocator(base=0, size=1024)
        spans = []
        for size in (100, 60, 200, 16):
            p = a.alloc(size)
            spans.append((p, p + size))
        spans.sort()
        for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
            assert e1 <= s2

    def test_free_coalesces(self):
        a = LSAllocator(base=0, size=256)
        p1 = a.alloc(64)
        p2 = a.alloc(64)
        p3 = a.alloc(64)
        a.free(p1, 64)
        a.free(p3, 64)
        a.free(p2, 64)
        # After coalescing everything is one extent again.
        assert a.can_alloc(256)

    def test_double_free_rejected(self):
        a = LSAllocator(base=0, size=256)
        p = a.alloc(32)
        a.free(p, 32)
        with pytest.raises(ValueError):
            a.free(p, 32)

    def test_foreign_free_rejected(self):
        a = LSAllocator(base=0x100, size=256)
        with pytest.raises(ValueError, match="outside"):
            a.free(0x500, 16)

    def test_high_watermark(self):
        a = LSAllocator(base=0, size=256)
        p = a.alloc(128)
        a.free(p, 128)
        a.alloc(32)
        assert a.high_watermark == 128

    @settings(max_examples=60)
    @given(
        st.lists(
            st.tuples(st.booleans(), st.integers(4, 200)),
            min_size=1,
            max_size=60,
        )
    )
    def test_allocator_invariants_under_random_workload(self, ops):
        """Free bytes accounting stays exact; live extents never overlap."""
        a = LSAllocator(base=0, size=4096)
        live: list[tuple[int, int]] = []
        for is_alloc, size in ops:
            if is_alloc or not live:
                try:
                    p = a.alloc(size)
                except AllocationError:
                    continue
                live.append((p, size))
            else:
                p, size = live.pop()
                a.free(p, size)
            # Invariant: allocated_bytes == sum of rounded live extents.
            expected = sum(LSAllocator._round(s) for _, s in live)
            assert a.allocated_bytes == expected
            # Invariant: live extents are disjoint.
            spans = sorted((p, p + LSAllocator._round(s)) for p, s in live)
            for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
                assert e1 <= s2
        for p, size in live:
            a.free(p, size)
        assert a.free_bytes == 4096
        assert a.can_alloc(4096)
