"""SPU fast-forward: engages on straight-line ALU runs, changes nothing.

``SPU._fast_forward`` retires a hazard-checked straight-line ALU run in
one engine tick (see ``docs/PERFORMANCE.md``).  These unit tests drive
mini-programs whose shapes hit every window boundary — branches,
MEM-slot ops, scoreboard hazards, the PF/EX block edge — and assert the
fast path (``REPRO_SIM_FAST=1``) is bit-identical to the per-cycle path
(``REPRO_SIM_FAST=0``) while dispatching strictly fewer engine ticks
where a window exists at all.
"""

from __future__ import annotations

import dataclasses

from repro.core.activity import GlobalObject, ObjRef
from repro.isa.builder import ThreadBuilder
from repro.isa.program import BlockKind
from repro.sim.stats import Bucket
from repro.testing import run_program


def _both_modes(build, monkeypatch, **kw):
    """Run ``build()``'s program fast and slow; return both results."""
    out = []
    for fast in (True, False):
        monkeypatch.setenv("REPRO_SIM_FAST", "1" if fast else "0")
        out.append(run_program(build(), **kw))
    return out


def _assert_identical(fast, slow):
    assert fast.cycles == slow.cycles
    assert dataclasses.asdict(fast.result.stats) == dataclasses.asdict(
        slow.result.stats
    )
    assert (
        fast.machine.engine.ticks_dispatched
        <= slow.machine.engine.ticks_dispatched
    )


def writer():
    b = ThreadBuilder("t")
    b.slot("out")
    return b


def run_writer(build, monkeypatch, words: int = 4):
    return _both_modes(
        build,
        monkeypatch,
        stores={0: ObjRef("out")},
        globals_=[GlobalObject.zeros("out", words)],
    )


class TestStraightLineRuns:
    def test_long_alu_run_collapses_to_fewer_ticks(self, monkeypatch):
        def build():
            b = writer()
            with b.block(BlockKind.PL):
                b.load("rout", "out")
            with b.block(BlockKind.EX):
                b.li("acc", 0)
                for i in range(40):
                    b.addi("acc", "acc", i)
                b.write("rout", 0, "acc")
                b.stop()
            return b

        fast, slow = run_writer(build, monkeypatch)
        _assert_identical(fast, slow)
        assert fast.word("out") == sum(range(40))
        # The 40-op run is one window: the fast run must actually have
        # skipped interior cycles, not merely matched totals.
        assert (
            fast.machine.engine.ticks_dispatched
            < slow.machine.engine.ticks_dispatched
        )

    def test_working_bucket_credited_in_bulk_matches(self, monkeypatch):
        def build():
            b = writer()
            with b.block(BlockKind.PL):
                b.load("rout", "out")
            with b.block(BlockKind.EX):
                b.li("x", 7)
                for _ in range(10):
                    b.addi("x", "x", 3)
                b.write("rout", 0, "x")
                b.stop()
            return b

        fast, slow = run_writer(build, monkeypatch)
        _assert_identical(fast, slow)
        f = fast.result.stats.spus[0].breakdown
        s = slow.result.stats.spus[0].breakdown
        assert f.working == s.working


class TestWindowBoundaries:
    def test_scoreboard_hazards_inside_the_window(self, monkeypatch):
        # A dependent MUL/DIV chain stalls on result latency mid-run; the
        # window must charge the same stall buckets as per-cycle ticks.
        def build():
            b = writer()
            with b.block(BlockKind.PL):
                b.load("rout", "out")
            with b.block(BlockKind.EX):
                b.li("x", 3)
                b.li("y", 40)
                b.muli("x", "x", 5)     # lat 2
                b.muli("x", "x", 2)     # RAW on x
                b.div("z", "y", "x")    # lat 8, RAW on x
                b.addi("z", "z", 1)     # RAW on z
                b.write("rout", 0, "z")
                b.stop()
            return b

        fast, slow = run_writer(build, monkeypatch)
        _assert_identical(fast, slow)
        assert fast.word("out") == 40 // 30 + 1

    def test_branches_terminate_the_window(self, monkeypatch):
        def build():
            b = writer()
            with b.block(BlockKind.PL):
                b.load("rout", "out")
            with b.block(BlockKind.EX):
                b.li("n", 25)
                b.li("acc", 0)
                b.label("top")
                b.add("acc", "acc", "n")
                b.subi("n", "n", 1)
                b.bnez("n", "top")
                b.write("rout", 0, "acc")
                b.stop()
            return b

        fast, slow = run_writer(build, monkeypatch)
        _assert_identical(fast, slow)
        assert fast.word("out") == sum(range(1, 26))

    def test_mem_slot_ops_interleaved(self, monkeypatch):
        # Local-store traffic splits the EX block into several windows
        # and exercises the dual-issue edge (ALU op + MEM successor).
        def build():
            b = writer()
            with b.block(BlockKind.PL):
                b.load("rout", "out")
            with b.block(BlockKind.EX):
                b.li("base", 0x200)
                b.li("x", 11)
                b.addi("x", "x", 4)
                b.lstore("base", 0, "x")
                b.addi("x", "x", 1)
                b.addi("x", "x", 1)
                b.lload("y", "base", 0)
                b.add("x", "x", "y")
                b.write("rout", 0, "x")
                b.stop()
            return b

        fast, slow = run_writer(build, monkeypatch)
        _assert_identical(fast, slow)
        assert fast.word("out") == 32

    def test_pf_block_boundary_never_fast_forwards(self, monkeypatch):
        # ALU runs inside a PF block stay on the per-cycle path (they
        # charge the Prefetching bucket and end at the DMA-yield edge).
        def build():
            b = writer()
            src = b.slot("src")
            bufp = b.slot("bufp")
            with b.block(BlockKind.PF):
                b.lsalloc("buf", 16)
                b.load("rsrc", src)
                b.li("t0", 1)
                b.addi("t0", "t0", 2)
                b.addi("t0", "t0", 3)
                b.dmaget("buf", "rsrc", 16, tag=1)
                b.storef(bufp, "buf")
            with b.block(BlockKind.PL):
                b.load("rout", "out")
                b.load("rbuf", bufp)
            with b.block(BlockKind.EX):
                b.lload("v", "rbuf", 0)
                b.li("acc", 0)
                for _ in range(8):
                    b.add("acc", "acc", "v")
                b.write("rout", 0, "acc")
                b.stop()
            return b

        def run(fast):
            monkeypatch.setenv("REPRO_SIM_FAST", "1" if fast else "0")
            return run_program(
                build(),
                stores={0: ObjRef("out"), 1: ObjRef("src")},
                globals_=[
                    GlobalObject.zeros("out", 4),
                    GlobalObject("src", (9, 0, 0, 0)),
                ],
            )

        fast, slow = run(True), run(False)
        _assert_identical(fast, slow)
        assert fast.word("out") == 72
        f = fast.result.stats.spus[0].breakdown
        s = slow.result.stats.spus[0].breakdown
        assert f.prefetch == s.prefetch


class TestObserversDisengage:
    def test_tracer_forces_per_cycle_ticks(self, monkeypatch):
        # With a tracer attached the window must not engage: per-cycle
        # observers need every cycle visited.  Identical results either
        # way, but no tick reduction relative to the slow path.
        from repro.cell.machine import Machine
        from repro.core.activity import SpawnSpec, TLPActivity
        from repro.obs.trace import Tracer
        from repro.testing import small_config

        def build():
            b = writer()
            with b.block(BlockKind.PL):
                b.load("rout", "out")
            with b.block(BlockKind.EX):
                b.li("acc", 0)
                for i in range(20):
                    b.addi("acc", "acc", 1)
                b.write("rout", 0, "acc")
                b.stop()
            return b

        def run(fast):
            monkeypatch.setenv("REPRO_SIM_FAST", "1" if fast else "0")
            builder = build()
            program = builder.build()
            activity = TLPActivity(
                name="t",
                templates=[program],
                globals_=[GlobalObject.zeros("out", 4)],
                spawns=[SpawnSpec(template="t", stores={0: ObjRef("out")})],
            )
            machine = Machine(small_config())
            machine.attach_tracer(Tracer())
            machine.load(activity)
            result = machine.run()
            return machine, result

        fm, fr = run(True)
        sm, sr = run(False)
        assert fr.cycles == sr.cycles
        assert fm.engine.ticks_dispatched == sm.engine.ticks_dispatched
        assert [e.to_dict() for e in fm.tracer.events] == [
            e.to_dict() for e in sm.tracer.events
        ]
