"""MFC / DMA: transfers, tags, chunking, queue limits, PF-block yields."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.activity import GlobalObject, ObjRef
from repro.isa.builder import ThreadBuilder
from repro.isa.program import BlockKind
from repro.sim.stats import Bucket
from repro.testing import run_program, small_config


def dma_copy_program(words: int, tag: int = 0, use_dmawait_in_ex: bool = False):
    """PF prefetches ``words`` from ``src``; EX copies them to ``out``."""
    b = ThreadBuilder("dma_copy")
    src = b.slot("src")
    out = b.slot("out")
    buf_slot = b.slot("bufp")
    with b.block(BlockKind.PF):
        b.lsalloc("buf", 4 * words)
        b.load("rs", src)
        b.dmaget("buf", "rs", 4 * words, tag=tag)
        b.storef(buf_slot, "buf")
    with b.block(BlockKind.PL):
        b.load("rout", out)
        b.load("rbuf", buf_slot)
    with b.block(BlockKind.EX):
        if use_dmawait_in_ex:
            b.dmawait(tag)
        for i in range(words):
            b.lload("v", "rbuf", 4 * i)
            b.write("rout", 4 * i, "v")
        b.stop()
    return b


def run_copy(words: int = 8, config=None, **kw):
    data = tuple(range(1, words + 1))
    b = dma_copy_program(words, **kw)
    res = run_program(
        b,
        stores={"src": ObjRef("src"), "out": ObjRef("out")},
        globals_=[GlobalObject("src", data), GlobalObject.zeros("out", words)],
        config=config,
    )
    return res, list(data)


class TestDmaTransfers:
    def test_prefetched_data_is_correct(self):
        res, data = run_copy(words=8)
        assert res.read_global("out") == data

    def test_large_transfer_is_chunked(self):
        # 64 words = 256 B > the 128 B max transfer -> 2 chunks.
        res, data = run_copy(words=64)
        assert res.read_global("out") == data
        assert res.machine.spes[0].mfc_stats.commands == 1
        assert res.machine.spes[0].mfc_stats.bytes_transferred == 256

    def test_dmawait_in_ex_blocks_until_done(self):
        res, data = run_copy(words=4, use_dmawait_in_ex=True)
        assert res.read_global("out") == data

    def test_prefetch_overhead_bucket_charged(self):
        res, _ = run_copy(words=8)
        bd = res.result.stats.spus[0].breakdown
        # The DMAGET command latency (30 cycles) lands in Prefetching.
        assert bd.prefetch >= 30

    def test_thread_yields_at_pf_end(self):
        """With a long memory latency the thread must be in WAIT_DMA, not
        spinning: the SPU goes idle (1 thread) instead of stalling."""
        res, data = run_copy(
            words=8, config=small_config(num_spes=1).with_latency(400)
        )
        assert res.read_global("out") == data
        bd = res.result.stats.spus[0].breakdown
        # The DMA flight time shows up as idle (pipeline released), and
        # crucially NOT as memory stalls.
        assert bd.idle > 300
        assert bd.mem_stall == 0


class TestMfcQueue:
    def test_queue_full_backpressure(self):
        """More outstanding commands than queue entries must retry, not drop."""
        cfg = small_config(num_spes=1)
        cfg = cfg.replace(mfc=dataclasses.replace(cfg.mfc, command_queue_size=2))
        words = 4
        b = ThreadBuilder("many_dmas")
        src = b.slot("src")
        out = b.slot("out")
        bufs = [b.slot(f"buf{i}") for i in range(6)]
        with b.block(BlockKind.PF):
            b.load("rs", src)
            for i in range(6):
                b.lsalloc("buf", 4 * words)
                b.dmaget("buf", "rs", 4 * words, tag=i)
                b.storef(bufs[i], "buf")
        with b.block(BlockKind.PL):
            b.load("rout", out)
            b.load("rbuf", bufs[5])
        with b.block(BlockKind.EX):
            b.lload("v", "rbuf", 0)
            b.write("rout", 0, "v")
            b.stop()
        res = run_program(
            b,
            stores={"src": ObjRef("src"), "out": ObjRef("out")},
            globals_=[GlobalObject("src", (42, 2, 3, 4)),
                      GlobalObject.zeros("out", 1)],
            config=cfg,
        )
        assert res.word("out") == 42
        assert res.machine.spes[0].mfc_stats.queue_full_rejections > 0

    def test_bad_dma_size_rejected(self):
        from repro.cell.local_store import LocalStore
        from repro.cell.mfc import MFC, DmaKind
        from repro.sim.config import LocalStoreConfig, MFCConfig

        mfc = MFC("m", 0, MFCConfig(), LocalStore(LocalStoreConfig()))
        with pytest.raises(ValueError):
            mfc.enqueue(DmaKind.GET, 0, 0, 6, 0, 0)  # not a word multiple
        with pytest.raises(ValueError):
            mfc.enqueue(DmaKind.GET, 0, 0, 0, 0, 0)


class TestNonBlockingOverlap:
    def test_second_thread_runs_while_first_waits_for_dma(self):
        """The paper's headline mechanism: a thread in Wait-for-DMA
        releases the pipeline and another ready thread executes."""
        from repro.core.activity import SpawnSpec
        from repro.testing import run_templates

        words = 16
        dma_b = dma_copy_program(words)
        alu = ThreadBuilder("alu_work")
        out2 = alu.slot("out2")
        with alu.block(BlockKind.PL):
            alu.load("rout", out2)
        with alu.block(BlockKind.EX):
            alu.li("acc", 0)
            with alu.for_range("i", 0, 50):
                alu.addi("acc", "acc", 3)
            alu.write("rout", 0, "acc")
            alu.stop()

        res = run_templates(
            templates=[dma_b.build(), alu.build()],
            spawns=[
                SpawnSpec(
                    template="dma_copy",
                    stores={dma_b.slot("src"): ObjRef("src"),
                            dma_b.slot("out"): ObjRef("out")},
                ),
                SpawnSpec(
                    template="alu_work",
                    stores={alu.slot("out2"): ObjRef("out2")},
                ),
            ],
            globals_=[
                GlobalObject("src", tuple(range(words))),
                GlobalObject.zeros("out", words),
                GlobalObject.zeros("out2", 1),
            ],
            config=small_config(num_spes=1).with_latency(300),
        )
        assert res.read_global("out") == list(range(words))
        assert res.word("out2") == 150
        # The ALU thread's work overlapped the DMA flight: total time is
        # far below the serialized sum (DMA wait + ALU work done back to
        # back would stall ~300 cycles doing nothing).
        bd = res.result.stats.spus[0].breakdown
        assert bd.working > 50  # the ALU thread actually ran
        assert bd.mem_stall == 0
