"""Main memory: functional storage, latency, port acceptance, messages."""

from __future__ import annotations

import pytest

from repro.cell.bus import Bus, BusEndpoint
from repro.cell.main_memory import MainMemory, MemoryFault
from repro.core.messages import (
    DmaReadRequest,
    DmaReadResponse,
    DmaWriteRequest,
    Message,
    ReadRequest,
    ReadResponse,
    WriteAck,
    WriteRequest,
)
from repro.sim.config import BusConfig, MainMemoryConfig
from repro.sim.engine import Engine


class Requester(BusEndpoint):
    node_id = 0

    def __init__(self, eng: Engine) -> None:
        self.eng = eng
        self.received: list[tuple[int, Message]] = []

    def deliver(self, msg: Message) -> None:
        self.received.append((self.eng.now, msg))


def make_memory(latency: int = 10, ports: int = 1):
    eng = Engine()
    bus = eng.register(Bus("bus", BusConfig()))
    mem = eng.register(
        MainMemory("mem", MainMemoryConfig(latency=latency, ports=ports))
    )
    mem.attach_bus(bus)
    req = Requester(eng)
    mem.directory = {0: req}
    return eng, bus, mem, req


class TestFunctionalStorage:
    def test_roundtrip(self):
        _, _, mem, _ = make_memory()
        mem.write_word(0x1000, 99)
        assert mem.read_word(0x1000) == 99

    def test_unwritten_reads_zero(self):
        _, _, mem, _ = make_memory()
        assert mem.read_word(0x2000) == 0

    def test_unaligned_rejected(self):
        _, _, mem, _ = make_memory()
        with pytest.raises(MemoryFault, match="unaligned"):
            mem.read_word(5)

    def test_out_of_range_rejected(self):
        _, _, mem, _ = make_memory()
        with pytest.raises(MemoryFault):
            mem.write_word(mem.config.size, 1)

    def test_block_helpers(self):
        _, _, mem, _ = make_memory()
        mem.load_block(0x100, [7, 8, 9])
        assert mem.read_block(0x100, 3) == [7, 8, 9]


class TestTimedProtocol:
    def test_read_response_carries_value_after_latency(self):
        eng, _, mem, req = make_memory(latency=10)
        mem.write_word(0x40, 1234)
        mem.deliver(ReadRequest(addr=0x40, reply_key=0, requester_spe=0))
        eng.drain()
        (t, msg), = req.received
        assert isinstance(msg, ReadResponse) and msg.value == 1234
        assert t >= 10

    def test_write_applies_and_acks(self):
        eng, _, mem, req = make_memory()
        mem.deliver(WriteRequest(addr=0x80, value=5, requester_spe=0))
        eng.drain()
        assert mem.read_word(0x80) == 5
        assert any(isinstance(m, WriteAck) for _, m in req.received)

    def test_dma_read_returns_block(self):
        eng, _, mem, req = make_memory()
        mem.load_block(0x100, [1, 2, 3, 4])
        mem.deliver(
            DmaReadRequest(addr=0x100, size=16, command_id=7, chunk_index=0,
                           requester_spe=0)
        )
        eng.drain()
        (_, msg), = req.received
        assert isinstance(msg, DmaReadResponse)
        assert msg.words == (1, 2, 3, 4)
        assert msg.command_id == 7

    def test_dma_write_applies_and_acks(self):
        eng, _, mem, req = make_memory()
        mem.deliver(
            DmaWriteRequest(addr=0x200, words=(9, 8), command_id=1,
                            chunk_index=0, requester_spe=0)
        )
        eng.drain()
        assert mem.read_block(0x200, 2) == [9, 8]
        assert len(req.received) == 1

    def test_single_port_serializes_acceptance(self):
        eng, _, mem, req = make_memory(latency=5, ports=1)
        for i in range(4):
            mem.deliver(ReadRequest(addr=4 * i, reply_key=i, requester_spe=0))
        eng.drain()
        times = sorted(t for t, _ in req.received)
        # One acceptance per cycle -> the last response is strictly later
        # than the first (the 4-channel bus may still bunch pairs).
        assert times[-1] > times[0]
        assert mem.stats.port_wait_cycles > 0

    def test_two_ports_accept_two_per_cycle(self):
        eng, _, mem, req = make_memory(latency=5, ports=2)
        for i in range(4):
            mem.deliver(ReadRequest(addr=4 * i, reply_key=i, requester_spe=0))
        eng.drain()
        times = sorted(t for t, _ in req.received)
        assert times[-1] - times[0] <= 2

    def test_unknown_requester_faults(self):
        eng, _, mem, _ = make_memory()
        mem.deliver(ReadRequest(addr=0, reply_key=0, requester_spe=42))
        with pytest.raises(MemoryFault, match="endpoint"):
            eng.drain()

    def test_stats_count_bytes(self):
        eng, _, mem, _ = make_memory()
        mem.deliver(WriteRequest(addr=0, value=1, requester_spe=0))
        mem.deliver(
            DmaReadRequest(addr=0, size=64, command_id=0, chunk_index=0,
                           requester_spe=0)
        )
        eng.drain()
        assert mem.stats.bytes_written == 4
        assert mem.stats.bytes_read == 64
