"""Event-skipping engine: scheduling, ordering, deadlock detection."""

from __future__ import annotations

import pytest

from repro.sim.component import Component
from repro.sim.engine import Engine, SimulationDeadlock, SimulationLimitExceeded


class Ticker(Component):
    """Ticks every ``period`` cycles, ``count`` times, recording cycles."""

    def __init__(self, name: str, period: int = 1, count: int = 5) -> None:
        super().__init__(name)
        self.period = period
        self.remaining = count
        self.ticks: list[int] = []

    def tick(self, now: int) -> int | None:
        self.ticks.append(now)
        self.remaining -= 1
        return now + self.period if self.remaining > 0 else None


class TestBasicScheduling:
    def test_single_component_ticks_at_requested_cycles(self):
        eng = Engine()
        t = eng.register(Ticker("t", period=3, count=4))
        eng.schedule(t, 1)
        eng.drain()
        assert t.ticks == [1, 4, 7, 10]

    def test_engine_skips_dead_cycles(self):
        eng = Engine()
        t = eng.register(Ticker("t", period=1000, count=3))
        eng.schedule(t, 1)
        eng.drain()
        assert eng.now == 2001
        assert eng.ticks_dispatched == 3

    def test_schedule_clamps_past_cycles_to_next(self):
        eng = Engine()
        t = eng.register(Ticker("t", count=1))
        eng.schedule(t, 0)  # now is 0; clamped to 1
        eng.drain()
        assert t.ticks == [1]

    def test_duplicate_schedule_is_idempotent(self):
        eng = Engine()
        t = eng.register(Ticker("t", count=1))
        eng.schedule(t, 5)
        eng.schedule(t, 5)
        eng.schedule(t, 9)  # later than existing -> ignored
        eng.drain()
        assert t.ticks == [5]

    def test_earlier_schedule_wins(self):
        eng = Engine()
        t = eng.register(Ticker("t", count=1))
        eng.schedule(t, 9)
        eng.schedule(t, 3)
        eng.drain()
        assert t.ticks == [3]

    def test_earlier_wake_supersedes_pending_tick(self):
        # A later-scheduled tick is superseded by an earlier wake; the
        # stale heap entry is lazily discarded, not dispatched twice.
        eng = Engine()
        t = eng.register(Ticker("t", count=1))
        eng.schedule(t, 40)
        eng.schedule(t, 12)
        eng.drain()
        assert t.ticks == [12]
        assert eng.ticks_dispatched == 1

    def test_callback_wake_supersedes_pending_tick(self):
        eng = Engine()
        t = eng.register(Ticker("t", count=1))
        eng.schedule(t, 50)
        eng.call_at(10, lambda: eng.schedule(t, 11))
        eng.drain()
        assert t.ticks == [11]
        assert eng.ticks_dispatched == 1

    def test_unregistered_component_rejected(self):
        eng = Engine()
        t = Ticker("t")
        with pytest.raises(RuntimeError):
            eng.schedule(t)

    def test_component_cannot_join_two_engines(self):
        e1, e2 = Engine(), Engine()
        t = e1.register(Ticker("t"))
        with pytest.raises(RuntimeError):
            e2.register(t)


class TestCounters:
    def test_callbacks_counted_separately_from_ticks(self):
        eng = Engine()
        t = eng.register(Ticker("t", count=2))
        eng.schedule(t, 1)
        eng.call_at(3, lambda: None)
        eng.call_at(4, lambda: None)
        eng.drain()
        assert eng.ticks_dispatched == 2
        assert eng.callbacks_dispatched == 2

    def test_stale_skipped_counts_superseded_pops(self):
        eng = Engine()
        t = eng.register(Ticker("t", count=1))
        eng.schedule(t, 40)
        eng.schedule(t, 12)  # cycle-40 entry goes stale
        eng.drain()
        assert t.ticks == [12]
        assert eng.stale_skipped == 1
        assert eng.ticks_dispatched == 1

    def test_pending_count_reports_live_entries_only(self):
        eng = Engine()
        t = eng.register(Ticker("t", count=1))
        eng.schedule(t, 40)
        eng.schedule(t, 12)
        eng.call_at(5, lambda: None)
        # Heap holds 3 entries, but only the tick at 12 and the callback
        # are live: the gauge must not count the stale cycle-40 entry.
        assert len(eng._heap) == 3
        assert eng.pending_count == 2
        assert eng.stale_count == 1
        eng.drain()
        assert eng.pending_count == 0
        assert eng.stale_count == 0


class TestCompaction:
    def test_supersede_heavy_scheduling_keeps_heap_bounded(self):
        eng = Engine()
        t = eng.register(Ticker("t", count=1))
        # Each schedule is earlier than the last: every call supersedes,
        # leaving one more stale entry behind.
        for cycle in range(100_000, 100_000 - 5_000, -1):
            eng.schedule(t, cycle)
        assert eng.compactions > 0
        # One live entry; stale garbage stays below the compaction
        # threshold plus the entries added since the last pass.
        assert eng.pending_count == 1
        assert len(eng._heap) < 200
        eng.drain()
        assert t.ticks == [100_000 - 5_000 + 1]
        assert eng.ticks_dispatched == 1

    def test_small_stale_populations_are_left_alone(self):
        eng = Engine()
        t = eng.register(Ticker("t", count=1))
        for cycle in (50, 40, 30):
            eng.schedule(t, cycle)
        assert eng.compactions == 0  # below COMPACT_MIN_STALE
        eng.drain()
        assert t.ticks == [30]


class TestOrdering:
    def test_same_cycle_priority_order(self):
        order: list[str] = []

        class P(Component):
            def __init__(self, name, prio):
                super().__init__(name)
                self.priority = prio

            def tick(self, now):
                order.append(self.name)
                return None

        eng = Engine()
        low = eng.register(P("low", 90))
        high = eng.register(P("high", 10))
        eng.schedule(low, 5)
        eng.schedule(high, 5)
        eng.drain()
        assert order == ["high", "low"]

    def test_same_priority_ties_follow_registration_order(self):
        # Ties on (cycle, priority) break by registration index, NOT push
        # order: a component that scheduled its tick far in advance (e.g.
        # an SPU fast-forwarding to its window end) must not jump ahead
        # of a peer that scheduled the same cycle later.
        order: list[str] = []

        class P(Component):
            def tick(self, now):
                order.append(self.name)
                return None

        eng = Engine()
        first = eng.register(P("first"))
        second = eng.register(P("second"))
        # Push in reverse registration order, at different times.
        eng.schedule(second, 50)
        eng.call_at(40, lambda: eng.schedule(first, 50))
        eng.drain()
        assert order == ["first", "second"]

    def test_callbacks_run_before_ticks(self):
        order: list[str] = []
        eng = Engine()
        t = eng.register(Ticker("t", count=1))
        eng.schedule(t, 5)
        eng.call_at(5, lambda: order.append("cb"))
        eng.drain()
        assert order == ["cb"]
        assert t.ticks == [5]

    def test_call_at_clamps_past_and_current_cycles(self):
        eng = Engine()
        seen: list[int] = []
        eng.call_at(0, lambda: seen.append(eng.now))  # now is 0
        eng.call_at(-7, lambda: seen.append(eng.now))
        eng.drain()
        assert seen == [1, 1]

    def test_callback_requesting_current_cycle_defers_to_next(self):
        # A callback can never re-enter its own cycle: call_at clamps a
        # same-cycle request to now + 1, so the dispatch loop is finite.
        eng = Engine()
        fired: list[tuple[str, int]] = []

        def outer() -> None:
            fired.append(("outer", eng.now))
            eng.call_at(eng.now, lambda: fired.append(("inner", eng.now)))

        eng.call_at(3, outer)
        eng.drain()
        assert fired == [("outer", 3), ("inner", 4)]

    def test_tick_requesting_current_cycle_callback_defers(self):
        class CallsBack(Component):
            def __init__(self, name: str) -> None:
                super().__init__(name)
                self.cb_cycles: list[int] = []

            def tick(self, now: int) -> None:
                self.engine.call_at(
                    now, lambda: self.cb_cycles.append(self.engine.now)
                )
                return None

        eng = Engine()
        c = eng.register(CallsBack("c"))
        eng.schedule(c, 5)
        eng.drain()
        assert c.cb_cycles == [6]

    def test_non_advancing_tick_raises(self):
        class Bad(Component):
            def tick(self, now):
                return now

        eng = Engine()
        bad = eng.register(Bad("bad"))
        eng.schedule(bad, 1)
        with pytest.raises(RuntimeError, match="non-advancing"):
            eng.drain()


class TestRunControl:
    def test_until_condition_stops_run(self):
        eng = Engine()
        t = eng.register(Ticker("t", period=2, count=100))
        eng.schedule(t, 1)
        eng.run(until=lambda: len(t.ticks) >= 3)
        assert len(t.ticks) == 3

    def test_deadlock_raises_with_component_states(self):
        eng = Engine()
        t = eng.register(Ticker("t", count=1))
        eng.schedule(t, 1)
        with pytest.raises(SimulationDeadlock, match="t:"):
            eng.run(until=lambda: False)

    def test_max_cycles_enforced(self):
        eng = Engine()
        t = eng.register(Ticker("t", period=10, count=1000))
        eng.schedule(t, 1)
        with pytest.raises(SimulationLimitExceeded):
            eng.run(until=lambda: False, max_cycles=100)

    def test_drain_returns_final_cycle(self):
        eng = Engine()
        t = eng.register(Ticker("t", period=7, count=3))
        eng.schedule(t, 1)
        assert eng.drain() == 15

    def test_empty_engine_drains_immediately(self):
        assert Engine().drain() == 0

    def test_wake_from_callback(self):
        eng = Engine()
        t = eng.register(Ticker("t", count=1))
        eng.call_at(10, lambda: eng.schedule(t, 20))
        eng.drain()
        assert t.ticks == [20]

    def test_pending_events_view(self):
        eng = Engine()
        t = eng.register(Ticker("t", count=1))
        eng.schedule(t, 7)
        pend = list(eng.pending_events())
        assert pend == [(7, t)]


class TestDiagnostics:
    def test_deadlock_report_says_queue_drained(self):
        eng = Engine()
        t = eng.register(Ticker("t", count=1))
        eng.schedule(t, 1)
        with pytest.raises(SimulationDeadlock) as exc:
            eng.run(until=lambda: False)
        text = str(exc.value)
        assert "event queue drained" in text
        assert "component states:" in text

    def test_limit_report_does_not_claim_queue_drained(self):
        # The old code reused the deadlock report here, falsely claiming
        # "event queue drained" while events were in fact still pending.
        eng = Engine()
        t = eng.register(Ticker("t", period=10, count=1000))
        eng.schedule(t, 1)
        with pytest.raises(SimulationLimitExceeded) as exc:
            eng.run(until=lambda: False, max_cycles=100)
        text = str(exc.value)
        assert "event queue drained" not in text
        assert "exceeded max_cycles=100" in text
        assert "events still pending" in text
        assert "component states:" in text
        assert "next pending events:" in text
        assert "tick t" in text

    def test_peek_events_orders_and_formats(self):
        def named_callback() -> None:
            pass

        eng = Engine()
        a = eng.register(Ticker("a", count=1))
        b = eng.register(Ticker("b", count=1))
        eng.schedule(a, 20)
        eng.schedule(b, 5)
        eng.call_at(10, named_callback)
        lines = eng.peek_events()
        assert len(lines) == 3
        assert lines[0] == "cycle 5: tick b"
        assert lines[1].startswith("cycle 10: callback ")
        assert lines[1].endswith("named_callback")
        assert lines[2] == "cycle 20: tick a"

    def test_peek_events_skips_stale_entries_and_honours_limit(self):
        eng = Engine()
        t = eng.register(Ticker("t", count=1))
        eng.schedule(t, 40)
        eng.schedule(t, 12)  # supersedes: the cycle-40 entry goes stale
        assert eng.peek_events() == ["cycle 12: tick t"]
        for cycle in range(50, 60):
            eng.call_at(cycle, lambda: None)
        assert len(eng.peek_events(limit=4)) == 4
