"""Statistics containers: breakdown arithmetic, instruction mix, invariants."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.stats import (
    Bucket,
    InstructionMix,
    MachineStats,
    SpuStats,
    TimeBreakdown,
)


class TestTimeBreakdown:
    def test_total_sums_buckets(self):
        bd = TimeBreakdown(working=10, idle=5, mem_stall=85)
        assert bd.total == 100

    def test_fraction(self):
        bd = TimeBreakdown(working=25, mem_stall=75)
        assert bd.fraction(Bucket.WORKING) == 0.25
        assert bd.fraction(Bucket.MEM_STALL) == 0.75

    def test_fraction_of_empty_breakdown_is_zero(self):
        assert TimeBreakdown().fraction(Bucket.IDLE) == 0.0

    def test_fraction_rejects_unknown_bucket(self):
        with pytest.raises(KeyError):
            TimeBreakdown().fraction("nap")

    def test_add_rejects_negative(self):
        with pytest.raises(ValueError):
            TimeBreakdown().add(Bucket.WORKING, -1)

    def test_add_rejects_unknown_bucket(self):
        with pytest.raises(KeyError):
            TimeBreakdown().add("nap", 1)

    def test_addition_is_elementwise(self):
        a = TimeBreakdown(working=1, idle=2)
        b = TimeBreakdown(working=10, prefetch=3)
        c = a + b
        assert c.working == 11 and c.idle == 2 and c.prefetch == 3

    def test_average(self):
        parts = [TimeBreakdown(working=10), TimeBreakdown(idle=10)]
        avg = TimeBreakdown.average(parts)
        assert avg.working == 5 and avg.idle == 5

    def test_average_of_nothing(self):
        assert TimeBreakdown.average([]).total == 0

    @given(
        st.lists(
            st.builds(
                TimeBreakdown,
                working=st.integers(0, 1000),
                idle=st.integers(0, 1000),
                mem_stall=st.integers(0, 1000),
            ),
            min_size=1,
            max_size=8,
        )
    )
    def test_fractions_always_sum_to_one_or_zero(self, parts):
        avg = TimeBreakdown.average(parts)
        total = sum(avg.fractions().values())
        assert total == pytest.approx(1.0) or avg.total == 0


class TestInstructionMix:
    def test_table5_categories(self):
        mix = InstructionMix()
        mix.record("LOAD", 3)
        mix.record("LLOAD", 2)
        mix.record("STORE", 4)
        mix.record("READ", 5)
        mix.record("WRITE", 6)
        mix.record("ADD", 100)
        row = mix.table5_row()
        assert row == {
            "total": 120, "LOAD": 5, "STORE": 4, "READ": 5, "WRITE": 6
        }

    def test_lload_counts_as_load(self):
        # "READ instructions ... are replaced by the compiler with LOAD
        # instructions": the rewritten accesses must land in Table 5's
        # LOAD column.
        mix = InstructionMix()
        mix.record("LLOAD")
        assert mix.loads == 1 and mix.reads == 0

    def test_merge(self):
        a, b = InstructionMix(), InstructionMix()
        a.record("ADD", 2)
        b.record("ADD", 3)
        b.record("READ")
        a.merge(b)
        assert a.by_opcode["ADD"] == 5 and a.reads == 1

    @given(st.lists(st.sampled_from(
        ["ADD", "LOAD", "LLOAD", "STORE", "READ", "WRITE", "MUL"]
    ), max_size=100))
    def test_total_equals_sum_of_records(self, ops):
        mix = InstructionMix()
        for op in ops:
            mix.record(op)
        assert mix.total == len(ops)


class TestSpuStats:
    def test_pipeline_usage(self):
        s = SpuStats()
        s.breakdown.add(Bucket.WORKING, 30)
        s.breakdown.add(Bucket.MEM_STALL, 70)
        s.issue_cycles = 25
        assert s.pipeline_usage == 0.25

    def test_pipeline_usage_empty(self):
        assert SpuStats().pipeline_usage == 0.0

    def test_slot_utilization_counts_dual_issue(self):
        s = SpuStats()
        s.breakdown.add(Bucket.WORKING, 10)
        s.issue_cycles = 10
        s.dual_issue_cycles = 10
        assert s.slot_utilization == 1.0


class TestMachineStats:
    def test_mix_aggregates_spus(self):
        m = MachineStats()
        for _ in range(2):
            s = SpuStats()
            s.mix.record("READ", 5)
            m.spus.append(s)
        assert m.mix.reads == 10

    def test_average_breakdown(self):
        m = MachineStats()
        a = SpuStats()
        a.breakdown.add(Bucket.WORKING, 10)
        b = SpuStats()
        b.breakdown.add(Bucket.IDLE, 10)
        m.spus = [a, b]
        avg = m.average_breakdown
        assert avg.working == 5 and avg.idle == 5

    def test_average_pipeline_usage_empty(self):
        assert MachineStats().average_pipeline_usage == 0.0
