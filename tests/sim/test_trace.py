"""Tracing: event recording, filtering, and lifecycle ordering."""

from __future__ import annotations

from repro.cell.machine import Machine
from repro.compiler.passes import prefetch_transform
from repro.sim.trace import TraceEvent, Tracer
from repro.testing import small_config
from repro.workloads import matmul


def traced_run(prefetch: bool, **tracer_kw):
    wl = matmul.build(n=4, threads=2)
    activity = prefetch_transform(wl.activity) if prefetch else wl.activity
    m = Machine(small_config(num_spes=2))
    tracer = Tracer(**tracer_kw)
    m.attach_tracer(tracer)
    m.load(activity)
    m.run()
    return tracer, m


class TestTracerBasics:
    def test_emit_and_query(self):
        t = Tracer()
        t.emit(5, "x", "boom", detail=1)
        assert len(t) == 1
        assert t.of_kind("boom")[0].fields["detail"] == 1

    def test_kind_filter(self):
        t = Tracer(kinds={"keep"})
        t.emit(1, "x", "keep")
        t.emit(2, "x", "drop")
        assert t.kinds_seen() == {"keep"}

    def test_limit_drops_and_counts(self):
        t = Tracer(limit=2)
        for i in range(5):
            t.emit(i, "x", "e")
        assert len(t) == 2 and t.dropped == 3

    def test_format(self):
        t = Tracer()
        t.emit(3, "spu0", "dispatch", tid=7)
        text = t.format()
        assert "spu0" in text and "dispatch" in text and "tid=7" in text

    def test_format_truncates(self):
        t = Tracer()
        for i in range(10):
            t.emit(i, "x", "e")
        text = t.format(max_lines=3)
        assert "7 more events" in text

    def test_event_str(self):
        e = TraceEvent(cycle=1, source="a", kind="k", fields={"x": 2})
        assert "x=2" in str(e)


class TestMachineTracing:
    def test_baseline_run_emits_lifecycle_events(self):
        tracer, m = traced_run(prefetch=False)
        assert {"thread-created", "thread-ready", "dispatch",
                "thread-stop", "thread-done"} <= tracer.kinds_seen()
        # No DMA in the baseline.
        assert "dma-command" not in tracer.kinds_seen()

    def test_prefetch_run_emits_dma_events(self):
        tracer, m = traced_run(prefetch=True)
        assert {"dma-command", "dma-tag-done", "yield-dma"} <= tracer.kinds_seen()

    def test_every_thread_follows_the_lifecycle_order(self):
        tracer, m = traced_run(prefetch=True)
        for tid in range(m.threads_created):
            events = tracer.of_thread(tid)
            kinds = [e.kind for e in events]
            assert kinds[0] == "thread-created"
            assert kinds[-1] == "thread-done"
            assert kinds.index("thread-ready") < kinds.index("dispatch")
            # Cycles are monotone.
            cycles = [e.cycle for e in events]
            assert cycles == sorted(cycles)

    def test_yield_resume_ordering(self):
        """A thread that yields at its PF boundary is re-readied only
        after its DMA tag group completes."""
        tracer, m = traced_run(prefetch=True)
        yielded = {e.fields["tid"] for e in tracer.of_kind("yield-dma")}
        assert yielded  # workers with PF blocks yielded
        for tid in yielded:
            events = tracer.of_thread(tid)
            kinds = [e.kind for e in events]
            y = kinds.index("yield-dma")
            tag_done = [i for i, k in enumerate(kinds) if k == "dma-tag-done"]
            resumed = [
                i for i, k in enumerate(kinds)
                if k == "thread-ready" and events[i].fields.get("resumed")
            ]
            assert resumed and tag_done
            assert max(tag_done) >= y
            assert resumed[0] > y

    def test_untraced_run_records_nothing(self):
        wl = matmul.build(n=4, threads=2)
        m = Machine(small_config(num_spes=1))
        m.load(wl.activity)
        m.run()  # no tracer attached; must simply not crash
