"""Configuration dataclasses: paper defaults, validation, derivation."""

from __future__ import annotations

import dataclasses

import pytest

from repro.sim.config import (
    BusConfig,
    DSEConfig,
    LocalStoreConfig,
    LSEConfig,
    MachineConfig,
    MainMemoryConfig,
    MFCConfig,
    SPUConfig,
    latency1_config,
    paper_config,
)


class TestPaperDefaults:
    def test_table2_main_memory(self):
        cfg = paper_config()
        assert cfg.main_memory.size == 512 * 1024 * 1024
        assert cfg.main_memory.latency == 150
        assert cfg.main_memory.ports == 1

    def test_table2_local_store(self):
        cfg = paper_config()
        assert cfg.local_store.size == 156 * 1024
        assert cfg.local_store.latency == 6
        assert cfg.local_store.ports == 3

    def test_table4_bus(self):
        cfg = paper_config()
        assert cfg.bus.num_buses == 4
        assert cfg.bus.bytes_per_cycle == 8
        assert cfg.bus.total_bandwidth == 32

    def test_table4_mfc(self):
        cfg = paper_config()
        assert cfg.mfc.command_queue_size == 16
        assert cfg.mfc.command_latency == 30

    def test_default_spe_count(self):
        assert paper_config().num_spes == 8
        assert paper_config(3).num_spes == 3

    def test_latency1_sets_both_latencies(self):
        cfg = latency1_config()
        assert cfg.main_memory.latency == 1
        assert cfg.local_store.latency == 1
        # Everything else untouched.
        assert cfg.bus == paper_config().bus
        assert cfg.mfc == paper_config().mfc


class TestValidation:
    def test_rejects_zero_spes(self):
        with pytest.raises(ValueError):
            MachineConfig(num_spes=0)

    def test_rejects_more_nodes_than_spes(self):
        with pytest.raises(ValueError):
            MachineConfig(num_spes=2, num_nodes=3)

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            MainMemoryConfig(latency=0)

    def test_rejects_zero_ports(self):
        with pytest.raises(ValueError):
            LocalStoreConfig(ports=0)

    def test_rejects_frame_region_overflow(self):
        with pytest.raises(ValueError):
            LocalStoreConfig(frame_region=200 * 1024)

    def test_rejects_frames_exceeding_region(self):
        lse = LSEConfig(num_frames=4096, frame_size_words=32)
        with pytest.raises(ValueError, match="frame region"):
            MachineConfig(lse=lse)

    def test_rejects_bad_issue_width(self):
        with pytest.raises(ValueError):
            SPUConfig(issue_width=3)

    def test_rejects_bad_dse_policy(self):
        with pytest.raises(ValueError):
            DSEConfig(policy="random")

    def test_rejects_bad_ready_policy(self):
        with pytest.raises(ValueError):
            LSEConfig(ready_policy="priority")

    def test_rejects_tiny_mfc_transfer(self):
        with pytest.raises(ValueError):
            MFCConfig(max_transfer_size=2)

    def test_rejects_zero_bus(self):
        with pytest.raises(ValueError):
            BusConfig(num_buses=0)


class TestDerivation:
    def test_with_latency(self):
        cfg = paper_config().with_latency(42)
        assert cfg.main_memory.latency == 42
        assert cfg.local_store.latency == 6  # unchanged

    def test_with_spes(self):
        assert paper_config().with_spes(2).num_spes == 2

    def test_replace_is_pure(self):
        base = paper_config()
        derived = base.with_latency(1)
        assert base.main_memory.latency == 150
        assert derived is not base

    def test_prefetch_region(self):
        ls = LocalStoreConfig()
        assert ls.prefetch_region == ls.size - ls.frame_region

    def test_frame_size_bytes(self):
        assert LSEConfig(frame_size_words=32).frame_size_bytes == 128

    def test_configs_are_hashable_and_frozen(self):
        cfg = paper_config()
        hash(cfg)
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.num_spes = 4  # type: ignore[misc]


class TestNodePartition:
    def test_single_node(self):
        cfg = MachineConfig(num_spes=8, num_nodes=1)
        assert all(cfg.node_of(i) == 0 for i in range(8))
        assert cfg.spes_of_node(0) == list(range(8))

    def test_two_nodes(self):
        cfg = MachineConfig(num_spes=8, num_nodes=2)
        assert cfg.spes_of_node(0) == [0, 1, 2, 3]
        assert cfg.spes_of_node(1) == [4, 5, 6, 7]

    def test_uneven_partition_covers_all(self):
        cfg = MachineConfig(num_spes=7, num_nodes=3)
        seen = []
        for node in range(3):
            seen.extend(cfg.spes_of_node(node))
        assert sorted(seen) == list(range(7))

    def test_node_of_out_of_range(self):
        with pytest.raises(ValueError):
            MachineConfig(num_spes=4).node_of(4)

    def test_spes_of_node_out_of_range(self):
        with pytest.raises(ValueError):
            MachineConfig(num_spes=4).spes_of_node(1)
