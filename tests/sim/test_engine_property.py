"""Property-based engine tests: ordering and completeness of dispatch."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.component import Component
from repro.sim.engine import Engine


class Recorder(Component):
    """Ticks `count` times every `period` cycles, logging (cycle, name)."""

    def __init__(self, name: str, period: int, count: int,
                 log: list[tuple[int, str]]) -> None:
        super().__init__(name)
        self.period = period
        self.remaining = count
        self.log = log

    def tick(self, now: int) -> int | None:
        self.log.append((now, self.name))
        self.remaining -= 1
        return now + self.period if self.remaining > 0 else None


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(1, 50),   # start cycle
            st.integers(1, 20),   # period
            st.integers(1, 10),   # tick count
        ),
        min_size=1,
        max_size=8,
    )
)
def test_every_requested_tick_happens_in_order(specs):
    eng = Engine()
    log: list[tuple[int, str]] = []
    comps = []
    for i, (start, period, count) in enumerate(specs):
        comp = eng.register(Recorder(f"c{i}", period, count, log))
        eng.schedule(comp, start)
        comps.append((comp, start, period, count))
    eng.drain()

    # 1. Global dispatch order is non-decreasing in time.
    cycles = [c for c, _ in log]
    assert cycles == sorted(cycles)
    # 2. Every component got exactly its requested ticks, at exactly the
    #    arithmetic progression it asked for.
    for i, (comp, start, period, count) in enumerate(comps):
        mine = [c for c, n in log if n == f"c{i}"]
        assert mine == [start + k * period for k in range(count)]
    # 3. The engine never visited more events than were requested.
    assert eng.ticks_dispatched == sum(c for _, _, c in specs)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(1, 200), min_size=1, max_size=20),
    st.integers(0, 19),
)
def test_callbacks_fire_at_exact_cycles(cycles, pick):
    eng = Engine()
    fired: list[int] = []
    for c in cycles:
        eng.call_at(c, lambda c=c: fired.append(c))
    eng.drain()
    assert sorted(fired) == sorted(cycles)
    assert eng.now == max(cycles)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(1, 100), min_size=2, max_size=10, unique=True))
def test_rescheduling_keeps_earliest_wins(targets):
    """Scheduling the same component at many cycles: it ticks once, at
    the earliest, then (having returned None) never again."""
    eng = Engine()
    log: list[tuple[int, str]] = []
    comp = eng.register(Recorder("c", period=1, count=1, log=log))
    for t in targets:
        eng.schedule(comp, t)
    eng.drain()
    assert [c for c, _ in log] == [min(targets)]
