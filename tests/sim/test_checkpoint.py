"""Checkpoint building blocks: callback descriptors, lazy cancellation,
live-entry filtering and the checkpoint file format's rejection paths."""

from __future__ import annotations

import json
import pickle

import pytest

from repro.cell.machine import Machine
from repro.sim.component import Component
from repro.sim.engine import Callback, Engine, register_callback
from repro.sim.snapshot import (
    FORMAT_VERSION,
    MAGIC,
    CheckpointError,
    read_header,
    save_checkpoint,
)
from repro.sim.watchdog import ProgressWatchdog, SimulationLivelock
from repro.testing import small_config
from repro.workloads import matmul


class Recorder(Component):
    """Component that records the payloads its callbacks deliver."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.seen: list[tuple] = []

    def _on_event(self, *payload) -> None:
        self.seen.append(payload)

    def tick(self, now: int) -> int | None:
        return None


register_callback("test.record", Recorder._on_event)


def _checkpointed_machine(tmp_path):
    """A finished reference run that left one mid-flight checkpoint."""
    wl = matmul.build(n=4, threads=2)
    machine = Machine(small_config(1))
    machine.load(wl.activity)
    result = machine.run(checkpoint_at=[100], checkpoint_dir=str(tmp_path))
    paths = sorted(tmp_path.glob("*.ckpt"))
    assert len(paths) == 1
    return wl, result, paths[0]


class TestCallbackDescriptors:
    def test_unregistered_kind_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unregistered callback kind"):
            Callback("no.such.kind", object())

    def test_reregistering_same_function_is_idempotent(self):
        register_callback("test.record", Recorder._on_event)

    def test_reregistering_conflicting_function_is_an_error(self):
        with pytest.raises(ValueError, match="already registered"):
            register_callback("test.record", lambda owner: None)

    def test_descriptor_dispatches_like_the_closure_it_replaces(self):
        eng = Engine()
        r = eng.register(Recorder("r"))
        eng.call_at(5, Callback("test.record", r, (1, "x")))
        eng.drain()
        assert r.seen == [(1, "x")]
        assert eng.callbacks_dispatched == 1

    def test_descriptor_pickles_and_rearms(self):
        r = Recorder("r")
        cb = Callback("test.record", r, (7,))
        clone = pickle.loads(pickle.dumps(cb))
        assert (clone.kind, clone.payload, clone.cancelled) == (
            "test.record", (7,), False
        )
        clone.owner.seen.clear()
        clone()
        assert clone.owner.seen == [(7,)]

    def test_describe_names_kind_and_owner(self):
        cb = Callback("test.record", Recorder("mfc0"))
        assert cb.describe() == "test.record(mfc0)"


class TestCancellation:
    def test_cancelled_callback_is_skipped_not_dispatched(self):
        eng = Engine()
        r = eng.register(Recorder("r"))
        cb = Callback("test.record", r, ("dead",))
        eng.call_at(5, cb)
        assert eng.pending_count == 1
        eng.cancel(cb)
        assert eng.pending_count == 0
        eng.cancel(cb)  # idempotent
        assert eng.pending_count == 0
        eng.drain()
        assert r.seen == []
        assert eng.stale_skipped == 1
        assert eng.callbacks_dispatched == 0


class TestPeekEventsFiltersStale:
    def test_superseded_tick_never_named_in_reports(self):
        eng = Engine()
        r = eng.register(Recorder("victim"))
        eng.schedule(r, 50)
        eng.schedule(r, 10)  # supersedes; cycle-50 entry goes stale
        lines = eng.peek_events(8)
        assert lines == ["cycle 10: tick victim"]

    def test_cancelled_callback_never_named_in_reports(self):
        eng = Engine()
        r = eng.register(Recorder("r"))
        live = Callback("test.record", r, ("live",))
        dead = Callback("test.record", r, ("dead",))
        eng.call_at(3, dead)
        eng.call_at(7, live)
        eng.cancel(dead)
        lines = eng.peek_events(8)
        assert lines == ["cycle 7: callback test.record(r)"]

    def test_peek_respects_dispatch_order_and_limit(self):
        eng = Engine()
        comps = [eng.register(Recorder(f"c{i}")) for i in range(4)]
        for i, c in enumerate(comps):
            eng.schedule(c, 10 + i)
        assert eng.peek_events(2) == [
            "cycle 10: tick c0", "cycle 11: tick c1",
        ]


class TestCheckpointFileFormat:
    def test_header_roundtrip(self, tmp_path):
        _wl, _result, path = _checkpointed_machine(tmp_path)
        header = read_header(str(path))
        assert header["magic"] == MAGIC
        assert header["version"] == FORMAT_VERSION
        assert header["cycle"] >= 100
        assert header["payload_bytes"] > 0

    def test_truncated_payload_rejected(self, tmp_path):
        _wl, _result, path = _checkpointed_machine(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[:-30])
        with pytest.raises(CheckpointError, match="truncated"):
            Machine.load_checkpoint(str(path))

    def test_corrupt_payload_rejected_by_digest(self, tmp_path):
        _wl, _result, path = _checkpointed_machine(tmp_path)
        data = bytearray(path.read_bytes())
        data[-100] ^= 0xFF  # flip one payload bit
        path.write_bytes(bytes(data))
        with pytest.raises(CheckpointError, match="digest mismatch"):
            Machine.load_checkpoint(str(path))

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "not-a-checkpoint.ckpt"
        path.write_bytes(b'{"magic": "something-else"}\n')
        with pytest.raises(CheckpointError, match="bad magic"):
            read_header(str(path))

    def test_unparseable_header_rejected(self, tmp_path):
        path = tmp_path / "garbage.ckpt"
        path.write_bytes(b"\x00\x01\x02 this is not json\n")
        with pytest.raises(CheckpointError, match="unparseable header"):
            read_header(str(path))

    def test_future_format_version_rejected(self, tmp_path):
        _wl, _result, path = _checkpointed_machine(tmp_path)
        data = path.read_bytes()
        head, _, payload = data.partition(b"\n")
        header = json.loads(head)
        header["version"] = FORMAT_VERSION + 1
        path.write_bytes(json.dumps(header).encode() + b"\n" + payload)
        with pytest.raises(CheckpointError, match="version"):
            Machine.load_checkpoint(str(path))

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            read_header(str(tmp_path / "absent.ckpt"))

    def test_no_tmp_file_left_behind(self, tmp_path):
        _checkpointed_machine(tmp_path)
        assert list(tmp_path.glob("*.tmp")) == []


class TestSaveRejectsUncheckpointableState:
    def test_machine_without_activity_rejected(self):
        machine = Machine(small_config(1))
        with pytest.raises(CheckpointError, match="no activity"):
            save_checkpoint(machine, "/dev/null")

    def test_bare_callable_in_heap_rejected(self, tmp_path):
        wl = matmul.build(n=4, threads=2)
        machine = Machine(small_config(1))
        machine.load(wl.activity)
        machine.engine.call_at(50, lambda: None)  # ad-hoc closure
        with pytest.raises(CheckpointError, match="bare callable"):
            save_checkpoint(machine, str(tmp_path / "x.ckpt"))


class _Busy(Component):
    """Keeps the event queue non-empty so the watchdog sees a livelock."""

    def tick(self, now: int) -> int | None:
        return now + 1


class TestWatchdogReport:
    def _livelock(self, checkpoint=None, last_checkpoint=None):
        eng = Engine()
        eng.register(_Busy("busy"))
        dog = eng.register(
            ProgressWatchdog(
                "dog", interval=10, stall_cycles=30,
                progress=lambda: 0,  # frozen forever
                checkpoint=checkpoint, last_checkpoint=last_checkpoint,
            )
        )
        eng.schedule(eng.components[0], 1)
        dog.start()
        with pytest.raises(SimulationLivelock) as exc:
            eng.run(until=lambda: False, max_cycles=10_000)
        return str(exc.value)

    def test_report_includes_engine_counters(self):
        report = self._livelock()
        assert "live events pending" in report
        assert "stale" in report
        assert "ticks" in report and "callbacks dispatched" in report
        assert "heap compactions" in report
        assert "last checkpoint: none taken" in report

    def test_report_names_last_checkpoint(self):
        report = self._livelock(
            last_checkpoint=lambda: (1234, "/ckpt/run.ckpt"),
        )
        assert "last checkpoint: cycle 1234 -> /ckpt/run.ckpt" in report

    def test_livelock_auto_checkpoints_before_raising(self):
        saved: list[str] = []

        def checkpoint() -> str:
            saved.append("taken")
            return "/ckpt/livelock.ckpt"

        report = self._livelock(checkpoint=checkpoint)
        assert saved == ["taken"]
        assert "state checkpointed to: /ckpt/livelock.ckpt" in report
