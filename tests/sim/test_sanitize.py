"""Invariant sanitizer: unit checks and machine-level wiring."""

from __future__ import annotations

import pytest

from repro.bench.runner import run_workload
from repro.bench.scale import builders
from repro.cell.machine import Machine
from repro.sim.config import MachineConfig
from repro.sim.sanitize import InvariantViolation, Sanitizer


class TestSynchronizationCounter:
    def test_positive_sc_passes(self):
        Sanitizer().sc_decrement("lse0", tid=3, sc_before=2)

    def test_underflow_raises(self):
        with pytest.raises(InvariantViolation, match="SC underflow"):
            Sanitizer().sc_decrement("lse0", tid=3, sc_before=0)


class TestFrameLifecycle:
    def test_assign_free_cycle_passes(self):
        s = Sanitizer()
        s.frame_assigned("lse0", 0x100)
        s.frame_released("lse0", 0x100)
        s.frame_assigned("lse0", 0x100)  # reuse after release is fine

    def test_double_assign_raises(self):
        s = Sanitizer()
        s.frame_assigned("lse0", 0x100)
        with pytest.raises(InvariantViolation, match="already assigned"):
            s.frame_assigned("lse0", 0x100)

    def test_double_free_raises(self):
        s = Sanitizer()
        s.frame_assigned("lse0", 0x100)
        s.frame_released("lse0", 0x100)
        with pytest.raises(InvariantViolation, match="double free"):
            s.frame_released("lse0", 0x100)

    def test_sites_are_independent(self):
        s = Sanitizer()
        s.frame_assigned("lse0", 0x100)
        s.frame_assigned("lse1", 0x100)  # same address, different SPE


class TestDmaOverlap:
    def test_disjoint_ranges_pass(self):
        s = Sanitizer()
        s.dma_write_begin("mfc0", 1, 0x1000, 64)
        s.dma_write_begin("mfc0", 2, 0x1040, 64)

    def test_overlap_raises(self):
        s = Sanitizer()
        s.dma_write_begin("mfc0", 1, 0x1000, 64)
        with pytest.raises(InvariantViolation, match="overlapping"):
            s.dma_write_begin("mfc0", 2, 0x103C, 8)

    def test_completed_command_frees_its_range(self):
        s = Sanitizer()
        s.dma_write_begin("mfc0", 1, 0x1000, 64)
        s.dma_write_end("mfc0", 1)
        s.dma_write_begin("mfc0", 2, 0x1000, 64)

    def test_other_spe_may_use_same_ls_range(self):
        s = Sanitizer()
        s.dma_write_begin("mfc0", 1, 0x1000, 64)
        s.dma_write_begin("mfc1", 1, 0x1000, 64)


class TestStartedThreadFrameStores:
    def test_store_before_start_passes(self):
        Sanitizer().frame_store("lse0", tid=4)

    def test_store_after_start_raises(self):
        s = Sanitizer()
        s.thread_started("spu0", tid=4)
        with pytest.raises(InvariantViolation, match="already started"):
            s.frame_store("lse0", tid=4)

    def test_registration_is_idempotent_across_reexecution(self):
        # A squashed thread re-dispatches and registers again; the tid
        # must stay protected the whole time (SC bookkeeping survives
        # the squash, so no legal producer store can arrive in between).
        s = Sanitizer()
        s.thread_started("spu0", tid=4)
        s.thread_started("spu0", tid=4)  # re-dispatch after squash
        with pytest.raises(InvariantViolation, match="thread 4"):
            s.frame_store("lse0", tid=4)

    def test_done_clears_registration(self):
        s = Sanitizer()
        s.thread_started("spu0", tid=4)
        s.thread_done(4)
        s.frame_store("lse0", tid=4)  # a recycled tid starts fresh

    def test_other_tids_unaffected(self):
        s = Sanitizer()
        s.thread_started("spu0", tid=4)
        s.frame_store("lse0", tid=5)


class TestExactlyOnceDelivery:
    def test_distinct_seqs_pass(self):
        s = Sanitizer()
        s.message_delivered(1)
        s.message_delivered(2)

    def test_repeat_delivery_raises(self):
        s = Sanitizer()
        s.message_delivered(1)
        with pytest.raises(InvariantViolation, match="more than once"):
            s.message_delivered(1)


class TestMachineWiring:
    def test_sanitizer_is_opt_in(self):
        assert Machine(MachineConfig()).sanitizer is None
        assert Machine(MachineConfig(sanitize=True)).sanitizer is not None

    def test_clean_run_passes_with_many_checks(self):
        wl = builders("test")["mmul"]()
        cfg = MachineConfig(sanitize=True)
        machine = Machine(cfg)
        machine.load(wl.activity)
        cycles = machine.run().cycles
        assert machine.sanitizer.checks > 100
        # Observation only: same timing as an unsanitized run.
        plain = Machine(MachineConfig())
        plain.load(builders("test")["mmul"]().activity)
        assert plain.run().cycles == cycles

    def test_sanitizer_covers_prefetch_dma_paths(self):
        wl = builders("test")["mmul"]()
        cfg = MachineConfig(sanitize=True)
        run_workload(wl, cfg, prefetch=True)  # must not raise

    def test_duplicated_transfers_are_absorbed_under_sanitizer(self):
        # The chaos cross-check: injected bus duplicates must never reach
        # an endpoint twice, and the sanitizer proves it at delivery.
        wl = builders("test")["mmul"]()
        cfg = (
            MachineConfig()
            .with_faults("seed=5,bus_dup=0.2")
            .replace(sanitize=True)
        )
        result = run_workload(wl, cfg, prefetch=True)
        assert result.stats.faults.bus_duplicates > 0
        assert (
            result.stats.faults.bus_duplicates_absorbed
            == result.stats.faults.bus_duplicates
        )

    def test_data_fault_recovery_holds_under_sanitizer(self):
        # Thread re-execution keeps SC bookkeeping intact: a full run
        # with corrupting faults, recovery and the started-thread
        # invariant enabled must finish clean with correct outputs.
        wl = builders("test")["mmul"]()
        cfg = (
            MachineConfig()
            .with_faults("seed=1,data_flip=0.3,data_truncate=0.15,"
                         "data_ls_stale=0.15,data_store_corrupt=0.1")
            .replace(sanitize=True)
        )
        result = run_workload(wl, cfg, prefetch=True)
        assert result.stats.faults.any_data_fired
        assert result.stats.faults.any_recovered
