"""Progress watchdog: livelock detection, retirement, deadlock passthrough."""

from __future__ import annotations

import pytest

from repro.bench.scale import builders
from repro.cell.machine import Machine
from repro.sim.component import Component
from repro.sim.config import MachineConfig, WatchdogConfig
from repro.sim.engine import Engine, SimulationDeadlock
from repro.sim.watchdog import ProgressWatchdog, SimulationLivelock


class Spinner(Component):
    """Keeps the event queue busy forever without making progress."""

    def __init__(self, name: str = "spinner") -> None:
        super().__init__(name)
        self.ticks = 0

    def tick(self, now: int) -> int:
        self.ticks += 1
        return now + 10

    def describe_state(self) -> str:
        return f"spinning ({self.ticks} ticks)"


def _watched_engine(progress, interval=50, stall=200, done=None):
    eng = Engine()
    spinner = eng.register(Spinner())
    eng.schedule(spinner, 1)
    dog = eng.register(
        ProgressWatchdog(
            "watchdog", interval=interval, stall_cycles=stall,
            progress=progress, done=done,
        )
    )
    dog.start()
    return eng, spinner, dog


class TestLivelockDetection:
    def test_frozen_progress_raises_livelock(self):
        eng, _, _ = _watched_engine(progress=lambda: 0)
        with pytest.raises(SimulationLivelock, match="no forward progress"):
            eng.run(until=lambda: False, max_cycles=1_000_000)
        # Fired at the stall window, nowhere near the cycle limit.
        assert eng.now <= 400

    def test_report_names_components_and_pending_events(self):
        eng, _, _ = _watched_engine(progress=lambda: 0)
        with pytest.raises(SimulationLivelock) as exc:
            eng.run(until=lambda: False, max_cycles=1_000_000)
        text = str(exc.value)
        assert "spinner: spinning" in text
        assert "component states:" in text
        assert "next pending events:" in text

    def test_progress_resets_the_stall_window(self):
        eng = Engine()
        spinner = eng.register(Spinner())
        eng.schedule(spinner, 1)
        # Progress follows the spinner's tick count: always advancing.
        dog = eng.register(
            ProgressWatchdog(
                "watchdog", interval=50, stall_cycles=200,
                progress=lambda: spinner.ticks,
            )
        )
        dog.start()
        eng.run(until=lambda: spinner.ticks >= 100)
        assert spinner.ticks >= 100  # no livelock despite 1000+ cycles

    def test_detail_callback_contributes_to_report(self):
        eng = Engine()
        spinner = eng.register(Spinner())
        eng.schedule(spinner, 1)
        dog = eng.register(
            ProgressWatchdog(
                "watchdog", interval=50, stall_cycles=200,
                progress=lambda: 0, detail=lambda: "in-flight DMA: 7",
            )
        )
        dog.start()
        with pytest.raises(SimulationLivelock, match="in-flight DMA: 7"):
            eng.run(until=lambda: False, max_cycles=1_000_000)


class TestRetirement:
    def test_done_watchdog_lets_engine_drain(self):
        flag = {"done": False}
        eng, spinner, _ = _watched_engine(
            progress=lambda: 0, done=lambda: flag["done"]
        )
        eng.run(until=lambda: spinner.ticks >= 3)
        flag["done"] = True
        spinner.wake(eng.now + 1)
        # Spinner keeps rescheduling; cap via until. The watchdog itself
        # must not keep an otherwise-finished run alive.
        eng.run(until=lambda: spinner.ticks >= 5)
        assert spinner.ticks >= 5

    def test_lone_watchdog_reports_deadlock_not_livelock(self):
        eng = Engine()
        dog = eng.register(
            ProgressWatchdog(
                "watchdog", interval=10, stall_cycles=100_000,
                progress=lambda: 0,
            )
        )
        dog.start()
        # Nothing else on the queue: the machine would have deadlocked.
        with pytest.raises(SimulationDeadlock, match="event queue drained"):
            eng.run(until=lambda: False)
        assert eng.now <= 20  # immediately, not after the stall window


class TestValidation:
    def test_bad_intervals_rejected(self):
        with pytest.raises(ValueError, match="interval"):
            ProgressWatchdog("w", interval=0, stall_cycles=10,
                             progress=lambda: 0)
        with pytest.raises(ValueError, match="stall_cycles"):
            ProgressWatchdog("w", interval=100, stall_cycles=50,
                             progress=lambda: 0)

    def test_watchdog_config_validation(self):
        with pytest.raises(ValueError):
            WatchdogConfig(interval=0)
        with pytest.raises(ValueError):
            WatchdogConfig(interval=100, stall_cycles=50)


class TestMachineIntegration:
    def test_machine_livelock_fires_well_before_max_cycles(self):
        wl = builders("test")["mmul"]()
        cfg = MachineConfig(
            watchdog=WatchdogConfig(interval=200, stall_cycles=1_000)
        )
        machine = Machine(cfg)
        machine.load(wl.activity)
        # Freeze the progress fingerprint: the machine keeps exchanging
        # events but the watchdog sees no thread retire, no instruction
        # commit — a constructed livelock.
        machine.watchdog._progress = lambda: 0
        with pytest.raises(SimulationLivelock) as exc:
            machine.run(max_cycles=50_000_000)
        assert machine.engine.now < 5_000  # not anywhere near max_cycles
        text = str(exc.value)
        # The report names the machine's components and run-level detail.
        assert "spu0:" in text and "lse0:" in text
        assert "in-flight DMA commands" in text

    def test_watchdog_does_not_change_cycle_counts(self):
        wl = builders("test")["mmul"]()
        on = Machine(MachineConfig())
        on.load(wl.activity)
        cycles_on = on.run().cycles
        off = Machine(
            MachineConfig(watchdog=WatchdogConfig(enabled=False))
        )
        off.load(wl.activity)
        assert off.run().cycles == cycles_on

    def test_machine_registers_watchdog_only_when_enabled(self):
        assert Machine(MachineConfig()).watchdog is not None
        off = Machine(MachineConfig(watchdog=WatchdogConfig(enabled=False)))
        assert off.watchdog is None
