"""Message protocol: wire sizes and immutability."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.messages import (
    AllocFrame,
    DmaGatherRequest,
    DmaReadRequest,
    DmaReadResponse,
    DmaWriteRequest,
    FallocRequest,
    FallocResponse,
    FFreeMsg,
    FrameFreed,
    ReadRequest,
    ReadResponse,
    StoreMsg,
    WriteAck,
    WriteRequest,
)


class TestWireSizes:
    @pytest.mark.parametrize(
        "msg,size",
        [
            (FallocRequest(request_id=1, requester_spe=0, template_id=0,
                           sc=1), 16),
            (AllocFrame(request_id=1, requester_spe=0, template_id=0,
                        sc=1), 16),
            (FallocResponse(request_id=1, handle=0, tid=0), 16),
            (StoreMsg(handle=0, slot=0, value=0), 16),
            (FFreeMsg(handle=0), 8),
            (FrameFreed(spe_id=0), 8),
            (ReadRequest(addr=0, reply_key=0, requester_spe=0), 8),
            (ReadResponse(reply_key=0, value=0), 8),
            (WriteRequest(addr=0, value=0, requester_spe=0), 12),
            (WriteAck(requester_spe=0), 8),
            (DmaReadRequest(addr=0, size=64, command_id=0, chunk_index=0,
                            requester_spe=0), 8),
            (DmaGatherRequest(addr=0, count=8, stride=32, command_id=0,
                              chunk_index=0, requester_spe=0), 16),
        ],
    )
    def test_control_message_sizes(self, msg, size):
        assert msg.size_bytes == size

    def test_dma_response_size_scales_with_payload(self):
        small = DmaReadResponse(command_id=0, chunk_index=0, ls_addr=0,
                                words=(1, 2))
        big = DmaReadResponse(command_id=0, chunk_index=0, ls_addr=0,
                              words=tuple(range(32)))
        assert small.size_bytes == 8
        assert big.size_bytes == 128

    def test_dma_write_size_includes_header(self):
        msg = DmaWriteRequest(addr=0, words=(1, 2, 3), command_id=0,
                              chunk_index=0, requester_spe=0)
        assert msg.size_bytes == 8 + 12


class TestImmutability:
    def test_messages_are_frozen(self):
        msg = StoreMsg(handle=1, slot=2, value=3)
        with pytest.raises(dataclasses.FrozenInstanceError):
            msg.value = 9  # type: ignore[misc]

    def test_messages_are_hashable(self):
        assert hash(FrameFreed(spe_id=1)) != hash(FrameFreed(spe_id=2))
