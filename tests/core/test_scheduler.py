"""Distributed scheduler: FALLOC routing, fork/join, remote stores, FFREE.

Exercised end-to-end through small machines — the scheduler protocol is
distributed state and is best validated by behaviour.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.activity import GlobalObject, ObjRef, SpawnSpec
from repro.isa.builder import ThreadBuilder
from repro.isa.program import BlockKind
from repro.testing import run_templates, small_config


def fork_join_activity(workers: int, worker_template_id: int = 1):
    """Root forks N children; each child adds its index into a join thread
    slot chain; join writes the count of tokens received."""
    root = ThreadBuilder("root")
    out_slot = root.slot("out")
    join_slot = root.slot("join")
    with root.block(BlockKind.PL):
        root.load("rout", out_slot)
        root.load("rjoin", join_slot)
    with root.block(BlockKind.PS):
        for k in range(workers):
            root.falloc(f"rw{k}", worker_template_id, 2)
        for k in range(workers):
            root.li("idx", k)
            root.store(f"rw{k}", 0, "idx")
            root.store(f"rw{k}", 1, "rjoin")
        root.stop()

    worker = ThreadBuilder("worker")
    worker.slot("idx")
    worker.slot("join")
    with worker.block(BlockKind.PL):
        worker.load("i", 0)
        worker.load("rjoin", 1)
    with worker.block(BlockKind.EX):
        worker.muli("v", "i", 10)
    with worker.block(BlockKind.PS):
        worker.store("rjoin", 2, "v")
        worker.stop()

    join = ThreadBuilder("join")
    join.slot("out")
    join.slot("unused")
    join.slot("last")
    with join.block(BlockKind.PL):
        join.load("rout", 0)
    with join.block(BlockKind.EX):
        join.li("done", 1)
        join.write("rout", 0, "done")
        join.stop()
    return root, worker, join


class TestForkJoin:
    @pytest.mark.parametrize("spes", [1, 2, 4])
    def test_fork_join_completes_on_any_machine(self, spes):
        from repro.core.activity import SpawnRef

        root, worker, join = fork_join_activity(workers=6)
        res = run_templates(
            templates=[root.build(), worker.build(), join.build()],
            spawns=[
                SpawnSpec(template="join", stores={0: ObjRef("out")},
                          extra_sc=6),
                SpawnSpec(template="root",
                          stores={0: ObjRef("out"), 1: SpawnRef(0)}),
            ],
            globals_=[GlobalObject.zeros("out", 1)],
            config=small_config(num_spes=spes),
        )
        assert res.word("out") == 1
        # 1 join + 1 root + 6 workers
        assert res.machine.threads_created == 8
        assert res.machine.threads_completed == 8

    def test_dse_least_loaded_spreads_threads(self):
        from repro.core.activity import SpawnRef

        root, worker, join = fork_join_activity(workers=8)
        res = run_templates(
            templates=[root.build(), worker.build(), join.build()],
            spawns=[
                SpawnSpec(template="join", stores={0: ObjRef("out")},
                          extra_sc=8),
                SpawnSpec(template="root",
                          stores={0: ObjRef("out"), 1: SpawnRef(0)}),
            ],
            globals_=[GlobalObject.zeros("out", 1)],
            config=small_config(num_spes=4),
        )
        executed = [s.spu_stats.threads_executed for s in res.machine.spes]
        # Least-loaded routing must not pile everything on one SPE.
        assert sum(1 for e in executed if e > 0) >= 3

    def test_remote_stores_cross_spes(self):
        from repro.core.activity import SpawnRef

        root, worker, join = fork_join_activity(workers=8)
        res = run_templates(
            templates=[root.build(), worker.build(), join.build()],
            spawns=[
                SpawnSpec(template="join", stores={0: ObjRef("out")},
                          extra_sc=8),
                SpawnSpec(template="root",
                          stores={0: ObjRef("out"), 1: SpawnRef(0)}),
            ],
            globals_=[GlobalObject.zeros("out", 1)],
            config=small_config(num_spes=4),
        )
        assert res.result.stats.scheduler.remote_stores > 0


class TestRoundRobinPolicy:
    def test_round_robin_distributes_cyclically(self):
        from repro.core.activity import SpawnRef

        cfg = small_config(num_spes=4)
        cfg = cfg.replace(dse=dataclasses.replace(cfg.dse, policy="round-robin"))
        root, worker, join = fork_join_activity(workers=8)
        res = run_templates(
            templates=[root.build(), worker.build(), join.build()],
            spawns=[
                SpawnSpec(template="join", stores={0: ObjRef("out")},
                          extra_sc=8),
                SpawnSpec(template="root",
                          stores={0: ObjRef("out"), 1: SpawnRef(0)}),
            ],
            globals_=[GlobalObject.zeros("out", 1)],
            config=cfg,
        )
        assert res.word("out") == 1
        executed = [s.spu_stats.threads_executed for s in res.machine.spes]
        assert all(e > 0 for e in executed)


class TestFFree:
    def test_explicit_ffree_of_own_frame(self):
        """A thread may FFREE its own frame in PS; STOP must not double-free."""
        t = ThreadBuilder("selfree")
        t.slot("out")
        t.slot("self")  # its own handle, stored by the spawner trick below
        with t.block(BlockKind.PL):
            t.load("rout", 0)
            t.load("rself", 1)
        with t.block(BlockKind.EX):
            t.li("v", 5)
            t.write("rout", 0, "v")
        with t.block(BlockKind.PS):
            t.ffree("rself")
            t.stop()
        # The spawner cannot know the handle in advance, so a parent
        # forks the thread and stores the child handle into the child.
        parent = ThreadBuilder("parent")
        parent.slot("out")
        with parent.block(BlockKind.PL):
            parent.load("rout", 0)
        with parent.block(BlockKind.PS):
            parent.falloc("rc", 1, 2)
            parent.store("rc", 0, "rout")
            parent.store("rc", 1, "rc")
            parent.stop()
        res = run_templates(
            templates=[parent.build(), t.build()],
            spawns=[SpawnSpec(template="parent", stores={0: ObjRef("out")})],
            globals_=[GlobalObject.zeros("out", 1)],
        )
        assert res.word("out") == 5
        # Both frames freed exactly once each.
        assert res.result.stats.scheduler.ffrees == 2

    def test_ffree_of_unallocated_frame_faults(self):
        from repro.core.lse import SchedulerError

        t = ThreadBuilder("badfree")
        t.slot("x")
        with t.block(BlockKind.PL):
            t.load("r", 0)
        with t.block(BlockKind.PS):
            t.li("bogus", 0x50)  # a frame address that is free
            t.ffree("bogus")
            t.stop()
        from repro.testing import run_program

        with pytest.raises(SchedulerError):
            run_program(t, stores={"x": 1})


class TestBackpressure:
    def test_store_burst_hits_lse_queue_limit(self):
        """A long run of back-to-back STOREs must exceed the LSE's queue
        and surface as LSE-stall cycles, not lost stores."""
        from repro.core.activity import SpawnRef

        burst = ThreadBuilder("burst")
        burst.slot("join")
        with burst.block(BlockKind.PL):
            burst.load("rjoin", 0)
        with burst.block(BlockKind.PS):
            burst.li("v", 1)
            for _ in range(40):
                burst.store("rjoin", 1, "v")
            burst.stop()
        sink = ThreadBuilder("sink")
        sink.slot("out")
        with sink.block(BlockKind.PL):
            sink.load("rout", 0)
        with sink.block(BlockKind.EX):
            sink.li("d", 7)
            sink.write("rout", 0, "d")
            sink.stop()
        res = run_templates(
            templates=[burst.build(), sink.build()],
            spawns=[
                SpawnSpec(template="sink", stores={0: ObjRef("out")},
                          extra_sc=40),
                SpawnSpec(template="burst", stores={0: SpawnRef(0)}),
            ],
            globals_=[GlobalObject.zeros("out", 1)],
        )
        assert res.word("out") == 7
        assert res.result.stats.spus[0].breakdown.lse_stall > 0
