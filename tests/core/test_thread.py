"""Thread lifecycle: SC counting and the Figure 4 state machine."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.thread import LifecycleError, ThreadInstance, ThreadState
from repro.isa.builder import ThreadBuilder
from repro.isa.program import BlockKind


def make_program(prefetch: bool = False):
    b = ThreadBuilder("t")
    s = b.slot("x")
    if prefetch:
        with b.block(BlockKind.PF):
            b.lsalloc("buf", 64)
            b.load("rb", s)
            b.dmaget("buf", "rb", 64, tag=0)
    with b.block(BlockKind.PL):
        b.load("v", s)
    with b.block(BlockKind.EX):
        b.stop()
    return b.build()


def make_thread(sc: int = 2, prefetch: bool = False) -> ThreadInstance:
    return ThreadInstance(
        tid=1,
        template_id=0,
        program=make_program(prefetch),
        spe_id=0,
        frame_addr=0x100,
        handle=0x100,
        sc=sc,
    )


class TestSynchronizationCounter:
    def test_counts_down_to_ready(self):
        t = make_thread(sc=2)
        assert not t.count_store()
        assert t.count_store()
        assert t.sc == 0

    def test_excess_store_rejected(self):
        t = make_thread(sc=1)
        t.count_store()
        with pytest.raises(LifecycleError, match="more stores"):
            t.count_store()

    def test_store_to_running_thread_rejected(self):
        t = make_thread(sc=1)
        t.count_store()
        t.transition(ThreadState.READY)
        t.transition(ThreadState.EXECUTING)
        with pytest.raises(LifecycleError):
            t.count_store()

    def test_negative_sc_rejected(self):
        with pytest.raises(ValueError):
            make_thread(sc=-1)

    @given(st.integers(1, 64))
    def test_ready_exactly_at_zero(self, sc):
        t = make_thread(sc=sc)
        for i in range(sc):
            became_ready = t.count_store()
            assert became_ready == (i == sc - 1)


class TestStateMachine:
    def test_figure4_path_with_prefetch(self):
        t = make_thread(sc=1, prefetch=True)
        t.count_store()
        t.transition(ThreadState.READY)
        t.transition(ThreadState.PROGRAM_DMA)
        t.transition(ThreadState.WAIT_DMA)
        t.transition(ThreadState.READY)
        t.transition(ThreadState.EXECUTING)
        t.transition(ThreadState.DONE)
        assert t.done

    def test_original_dta_path(self):
        t = make_thread(sc=1)
        t.count_store()
        t.transition(ThreadState.READY)
        t.transition(ThreadState.EXECUTING)
        t.transition(ThreadState.DONE)

    def test_pf_with_completed_dma_skips_wait(self):
        # "Program DMA" may go straight to execution if nothing is pending.
        t = make_thread(sc=0, prefetch=True)
        t.state = ThreadState.READY
        t.transition(ThreadState.PROGRAM_DMA)
        t.transition(ThreadState.EXECUTING)

    @pytest.mark.parametrize(
        "src,dst",
        [
            (ThreadState.WAIT_STORES, ThreadState.EXECUTING),
            (ThreadState.READY, ThreadState.DONE),
            (ThreadState.EXECUTING, ThreadState.WAIT_DMA),
            (ThreadState.DONE, ThreadState.READY),
            (ThreadState.WAIT_DMA, ThreadState.EXECUTING),
        ],
    )
    def test_illegal_transitions_rejected(self, src, dst):
        t = make_thread()
        t.state = src
        with pytest.raises(LifecycleError):
            t.transition(dst)

    def test_recovery_squash_transition(self):
        # EXECUTING -> READY is the data-fault re-execution squash.
        t = make_thread()
        t.state = ThreadState.EXECUTING
        t.transition(ThreadState.READY)
        assert t.runnable

    def test_runnable_property(self):
        t = make_thread(sc=0)
        t.state = ThreadState.READY
        assert t.runnable
        t.transition(ThreadState.EXECUTING)
        assert not t.runnable

    def test_describe_mentions_key_facts(self):
        t = make_thread()
        text = t.describe()
        assert "tid=1" in text and "wait-stores" in text
