"""Frame handles and frame bookkeeping."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.frame import (
    Frame,
    handle_addr,
    handle_pe,
    pack_handle,
    unpack_handle,
)


class TestHandles:
    @given(st.integers(0, 255), st.integers(0, (1 << 18) - 1).map(lambda x: x * 4))
    def test_pack_unpack_roundtrip(self, pe, addr):
        assert unpack_handle(pack_handle(pe, addr)) == (pe, addr)

    def test_accessors(self):
        h = pack_handle(3, 0x100)
        assert handle_pe(h) == 3
        assert handle_addr(h) == 0x100

    def test_unaligned_address_rejected(self):
        with pytest.raises(ValueError, match="aligned"):
            pack_handle(0, 6)

    def test_oversized_address_rejected(self):
        with pytest.raises(ValueError):
            pack_handle(0, 1 << 20)

    def test_negative_pe_rejected(self):
        with pytest.raises(ValueError):
            pack_handle(-1, 0)

    def test_negative_handle_rejected(self):
        with pytest.raises(ValueError):
            unpack_handle(-5)

    @given(
        st.tuples(st.integers(0, 63), st.integers(0, 1023).map(lambda x: x * 4)),
        st.tuples(st.integers(0, 63), st.integers(0, 1023).map(lambda x: x * 4)),
    )
    def test_packing_is_injective(self, a, b):
        if a != b:
            assert pack_handle(*a) != pack_handle(*b)


class TestFrame:
    def test_assign_release_cycle(self):
        f = Frame(addr=0x80, size_words=32)
        assert f.free
        f.assign(7)
        assert not f.free and f.owner_tid == 7
        f.release()
        assert f.free

    def test_double_assign_rejected(self):
        f = Frame(addr=0, size_words=32)
        f.assign(1)
        with pytest.raises(RuntimeError, match="already owned"):
            f.assign(2)

    def test_double_release_rejected(self):
        f = Frame(addr=0, size_words=32)
        f.assign(1)
        f.release()
        with pytest.raises(RuntimeError, match="already free"):
            f.release()

    def test_release_clears_write_count(self):
        f = Frame(addr=0, size_words=32)
        f.assign(1)
        f.writes = 5
        f.release()
        f.assign(2)
        assert f.writes == 0
