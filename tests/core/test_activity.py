"""TLP activities: layout, template registry, spawn resolution."""

from __future__ import annotations

import pytest

from repro.core.activity import (
    GLOBAL_ALIGN,
    GLOBAL_BASE,
    GlobalObject,
    ObjRef,
    SpawnRef,
    SpawnSpec,
    TLPActivity,
)
from repro.isa.builder import ThreadBuilder
from repro.isa.program import BlockKind


def stub_template(name: str):
    b = ThreadBuilder(name)
    with b.block(BlockKind.EX):
        b.stop()
    return b.build()


def make_activity(**kw):
    defaults = dict(
        name="act",
        templates=[stub_template("a"), stub_template("b")],
        globals_=[GlobalObject("g1", (1, 2, 3)), GlobalObject("g2", (9,) * 100)],
        spawns=[SpawnSpec(template="a")],
    )
    defaults.update(kw)
    return TLPActivity(**defaults)


class TestTemplates:
    def test_ids_follow_order(self):
        act = make_activity()
        assert act.template_id("a") == 0
        assert act.template_id("b") == 1
        assert act.template("a").name == "a"
        assert act.template(1).name == "b"

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            make_activity(templates=[stub_template("a"), stub_template("a")])

    def test_no_templates_rejected(self):
        with pytest.raises(ValueError):
            make_activity(templates=[])

    def test_with_templates_preserves_ids(self):
        act = make_activity()
        replaced = act.with_templates(
            [stub_template("a"), stub_template("b")]
        )
        assert replaced.template_ids == act.template_ids

    def test_with_templates_rejects_reorder(self):
        act = make_activity()
        with pytest.raises(ValueError):
            act.with_templates([stub_template("b"), stub_template("a")])


class TestLayout:
    def test_objects_start_at_global_base(self):
        act = make_activity()
        assert act.global_obj("g1").addr == GLOBAL_BASE

    def test_objects_are_aligned_and_disjoint(self):
        act = make_activity()
        g1, g2 = act.global_obj("g1"), act.global_obj("g2")
        assert g1.addr % GLOBAL_ALIGN == 0
        assert g2.addr % GLOBAL_ALIGN == 0
        assert g2.addr >= g1.addr + g1.size_bytes

    def test_duplicate_global_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            make_activity(
                globals_=[GlobalObject("g", (1,)), GlobalObject("g", (2,))]
            )

    def test_unknown_global_lookup(self):
        with pytest.raises(KeyError):
            make_activity().global_obj("nope")

    def test_zeros_helper(self):
        z = GlobalObject.zeros("z", 5)
        assert z.data == (0,) * 5

    def test_empty_object_rejected(self):
        with pytest.raises(ValueError):
            GlobalObject("e", ())


class TestResolve:
    def test_objref_resolves_to_address(self):
        act = make_activity()
        assert act.resolve(ObjRef("g1")) == act.global_obj("g1").addr
        assert act.resolve(ObjRef("g1", offset=8)) == act.global_obj("g1").addr + 8

    def test_int_passes_through(self):
        assert make_activity().resolve(42) == 42

    def test_spawnref_needs_handles(self):
        with pytest.raises(ValueError, match="spawn time"):
            make_activity().resolve(SpawnRef(0))

    def test_spawnref_resolves_from_handles(self):
        act = make_activity()
        assert act.resolve(SpawnRef(0), spawned_handles=[0xAB]) == 0xAB

    def test_spawnref_future_spawn_rejected(self):
        act = make_activity()
        with pytest.raises(ValueError, match="not happened"):
            act.resolve(SpawnRef(1), spawned_handles=[0xAB])

    def test_negative_spawnref_rejected(self):
        with pytest.raises(ValueError):
            SpawnRef(-1)


class TestValidation:
    def test_unknown_spawn_template_rejected(self):
        act = make_activity(spawns=[SpawnSpec(template="zzz")])
        with pytest.raises(ValueError, match="unknown"):
            act.validate()

    def test_forward_spawnref_rejected(self):
        act = make_activity(
            spawns=[
                SpawnSpec(template="a", stores={0: SpawnRef(1)}),
                SpawnSpec(template="b"),
            ]
        )
        with pytest.raises(ValueError, match="not earlier"):
            act.validate()

    def test_sc_counts_stores_plus_extra(self):
        spec = SpawnSpec(template="a", stores={0: 1, 1: 2}, extra_sc=3)
        assert spec.sc == 5

    def test_has_prefetch_false_for_plain_templates(self):
        assert not make_activity().has_prefetch
