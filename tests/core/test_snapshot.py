"""Scheduler snapshots: capture, aggregates, invariants."""

from __future__ import annotations

from repro.cell.machine import Machine
from repro.compiler.passes import prefetch_transform
from repro.core.scheduler import SchedulerSnapshot
from repro.testing import small_config
from repro.workloads import bitcount, matmul


class TestCapture:
    def test_snapshot_before_run_is_empty(self):
        m = Machine(small_config(num_spes=2))
        snap = SchedulerSnapshot.capture(m)
        assert snap.live_threads == 0
        assert snap.frames_used == 0
        assert snap.check_invariants() == []

    def test_snapshot_after_run_is_drained(self):
        m = Machine(small_config(num_spes=2))
        m.load(matmul.build(n=4, threads=2).activity)
        m.run()
        snap = SchedulerSnapshot.capture(m)
        assert snap.live_threads == 0
        assert snap.threads_created == snap.threads_completed == 3
        assert snap.frames_used == 0
        assert snap.check_invariants() == []

    def test_mid_run_snapshots_satisfy_invariants(self):
        """Capture at several points during a fork-heavy run."""
        m = Machine(small_config(num_spes=2))
        m.load(bitcount.build(iterations=8, unroll=4).activity)
        checkpoints = []

        # Run in slices by bounding cycles and resuming.
        target = [2000]

        def until():
            if m.engine.now >= target[0]:
                snap = SchedulerSnapshot.capture(m)
                checkpoints.append(snap)
                target[0] += 2000
            return (
                m.ppe.done
                and m.threads_created > 0
                and m.threads_completed == m.threads_created
            )

        m.engine.run(until=until)
        assert checkpoints, "expected at least one mid-run snapshot"
        for snap in checkpoints:
            assert snap.check_invariants() == [], snap.format()

    def test_waiting_dma_visible_mid_run(self):
        activity = prefetch_transform(matmul.build(n=8, threads=8).activity)
        m = Machine(small_config(num_spes=1))
        m.load(activity)
        seen_waiting = []

        def until():
            snap = SchedulerSnapshot.capture(m)
            if snap.waiting_dma:
                seen_waiting.append(snap.waiting_dma)
            return (
                m.ppe.done
                and m.threads_created > 0
                and m.threads_completed == m.threads_created
            )

        m.engine.run(until=until)
        assert seen_waiting, "threads should be observed in WAIT_DMA"

    def test_format_is_compact_and_informative(self):
        m = Machine(small_config(num_spes=2))
        m.load(matmul.build(n=4, threads=2).activity)
        m.run()
        text = SchedulerSnapshot.capture(m).format()
        assert "lse0" in text and "dse0" in text and "done" in text
