"""Access analysis and the worthwhileness rule."""

from __future__ import annotations

import pytest

from repro.compiler.analysis import (
    AnalysisError,
    analyze_program,
    select_regions,
)
from repro.isa.builder import ThreadBuilder
from repro.isa.instructions import GlobalAccess, LinExpr
from repro.isa.program import BlockKind


def program_with_reads(accesses, writes=()):
    """One READ per access spec, plus optional annotated WRITEs."""
    b = ThreadBuilder("p")
    slots = {}
    for acc in accesses:
        slots.setdefault(acc.obj, acc.base_slot)
    # Allocate slots in base_slot order so indices line up.
    names = {}
    for obj, slot in sorted(slots.items(), key=lambda kv: kv[1]):
        while b.frame_words < slot:
            b.reserve_slots(1)
        names[obj] = b.pointer_slot(f"{obj}_ptr", obj=obj)
        assert names[obj] == slot
    out_slot = b.slot("out")
    with b.block(BlockKind.PL):
        for obj in names:
            b.load(f"r_{obj}", names[obj])
        b.load("rout", out_slot)
    with b.block(BlockKind.EX):
        for i, acc in enumerate(accesses):
            b.read(f"v{i}", f"r_{acc.obj}", 0, access=acc)
        for obj in writes:
            b.li("w", 1)
            b.write("rout", 0, "w",
                    access=GlobalAccess(obj=obj, base_slot=out_slot))
        b.stop()
    return b.build()


def acc(obj="A", slot=0, start=LinExpr.const(0), size=64, uses=16,
        dynamic=False):
    return GlobalAccess(
        obj=obj, base_slot=slot, region_start=start, region_bytes=size,
        expected_uses=uses, dynamic_index=dynamic,
    )


class TestGrouping:
    def test_equal_regions_grouped(self):
        prog = program_with_reads([acc(), acc()])
        analysis = analyze_program(prog)
        assert len(analysis.regions) == 1
        assert len(analysis.regions[0].read_indices) == 2
        assert analysis.regions[0].expected_uses == 32

    def test_distinct_objects_not_grouped(self):
        prog = program_with_reads([acc("A", 0), acc("B", 1)])
        assert len(analyze_program(prog).regions) == 2

    def test_distinct_region_sizes_not_grouped(self):
        prog = program_with_reads([acc(size=64), acc(size=128)])
        assert len(analyze_program(prog).regions) == 2

    def test_unannotated_reads_tracked_separately(self):
        b = ThreadBuilder("p")
        s = b.slot("p")
        with b.block(BlockKind.PL):
            b.load("r", s)
        with b.block(BlockKind.EX):
            b.read("v", "r", 0)
            b.stop()
        analysis = analyze_program(b.build())
        assert analysis.regions == []
        assert len(analysis.unannotated_reads) == 1

    def test_written_objects_recorded(self):
        prog = program_with_reads([acc()], writes=("C",))
        assert analyze_program(prog).written_objects == {"C"}

    def test_regions_ordered_by_first_use(self):
        prog = program_with_reads([acc("B", 1, size=128), acc("A", 0)])
        regions = analyze_program(prog).regions
        assert [r.obj for r in regions] == ["B", "A"]


class TestValidationErrors:
    def test_undeclared_pointer_param_rejected(self):
        b = ThreadBuilder("p")
        s = b.slot("p")  # NOT a pointer_slot
        with b.block(BlockKind.PL):
            b.load("r", s)
        with b.block(BlockKind.EX):
            b.read("v", "r", 0,
                   access=GlobalAccess(obj="A", base_slot=s))
            b.stop()
        with pytest.raises(AnalysisError, match="not a declared pointer"):
            analyze_program(b.build())

    def test_object_mismatch_rejected(self):
        b = ThreadBuilder("p")
        s = b.pointer_slot("p", obj="A")
        with b.block(BlockKind.PL):
            b.load("r", s)
        with b.block(BlockKind.EX):
            b.read("v", "r", 0,
                   access=GlobalAccess(obj="B", base_slot=s))
            b.stop()
        with pytest.raises(AnalysisError, match="claims"):
            analyze_program(b.build())


class TestWorthwhileness:
    def test_high_utilization_selected(self):
        prog = program_with_reads([acc(size=64, uses=16)])  # 64/64 = 1.0
        analysis = analyze_program(prog)
        assert len(select_regions(analysis, 0.5)) == 1

    def test_low_utilization_skipped(self):
        # 4 uses of a 1024-byte table: the bitcnt byte-table case.
        prog = program_with_reads([acc(size=1024, uses=4, dynamic=True)])
        analysis = analyze_program(prog)
        assert select_regions(analysis, 0.5) == []

    def test_threshold_zero_selects_everything(self):
        prog = program_with_reads([acc(size=1024, uses=1, dynamic=True)])
        analysis = analyze_program(prog)
        assert len(select_regions(analysis, 0.0)) == 1

    def test_written_object_not_prefetched(self):
        prog = program_with_reads([acc(obj="A")], writes=("A",))
        analysis = analyze_program(prog)
        assert select_regions(analysis, 0.5) == []

    def test_shared_base_slot_selected_once(self):
        # Two distinct regions off the same pointer parameter: only the
        # earliest-use one can redirect the slot.
        prog = program_with_reads(
            [acc(size=64), acc(size=128, uses=64)]
        )
        analysis = analyze_program(prog)
        assert len(select_regions(analysis, 0.5)) == 1

    def test_utilization_math(self):
        prog = program_with_reads([acc(size=256, uses=16)])
        region = analyze_program(prog).regions[0]
        assert region.utilization == pytest.approx(16 * 4 / 256)
