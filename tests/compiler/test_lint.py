"""Activity linting: all shipped workloads are clean; defects are caught."""

from __future__ import annotations

import pytest

from repro.compiler.lint import lint_activity, lint_template
from repro.compiler.passes import PrefetchOptions, prefetch_transform
from repro.core.activity import GlobalObject, ObjRef, SpawnSpec, TLPActivity
from repro.isa.builder import ThreadBuilder
from repro.isa.program import BlockKind
from repro.workloads import bitcount, colsum, inplace, matmul, zoom


ALL_WORKLOADS = [
    ("mmul", lambda: matmul.build(n=4, threads=2)),
    ("zoom", lambda: zoom.build(n=4, z=2, threads=2)),
    ("bitcnt", lambda: bitcount.build(iterations=4, unroll=2)),
    ("colsum", lambda: colsum.build(n=4, mode="gather")),
    ("brighten", lambda: inplace.build(n=4, threads=2)),
]


class TestShippedWorkloadsAreClean:
    @pytest.mark.parametrize("name,build", ALL_WORKLOADS,
                             ids=[n for n, _ in ALL_WORKLOADS])
    def test_baseline_activity_lints_clean(self, name, build):
        assert lint_activity(build().activity) == []

    @pytest.mark.parametrize("name,build", ALL_WORKLOADS,
                             ids=[n for n, _ in ALL_WORKLOADS])
    def test_transformed_activity_lints_clean(self, name, build):
        activity = build().activity
        transformed = prefetch_transform(
            activity, PrefetchOptions(allow_writeback=True)
        )
        # The pass's own generated code must satisfy the lint too
        # (PF registers are exempt by design).
        assert lint_activity(transformed) == []


def one_template_activity(builder: ThreadBuilder, stores=None):
    return TLPActivity(
        name="lint-test",
        templates=[builder.build()],
        globals_=[GlobalObject.zeros("out", 1)],
        spawns=[SpawnSpec(template=builder.name, stores=stores or {})],
    )


class TestDefectDetection:
    def test_read_before_write_flagged(self):
        b = ThreadBuilder("leaky")
        b.slot("x")
        with b.block(BlockKind.PL):
            b.load("v", 0)
        with b.block(BlockKind.EX):
            b.add("v", "v", "ghost")  # never defined
            b.stop()
        findings = lint_template(b.build())
        assert any("read in EX" in f for f in findings)

    def test_partially_annotated_reads_flagged(self):
        from repro.isa.instructions import GlobalAccess

        b = ThreadBuilder("half")
        p = b.pointer_slot("A", obj="A")
        acc = GlobalAccess(obj="A", base_slot=p, region_bytes=64,
                           expected_uses=16)
        with b.block(BlockKind.PL):
            b.load("ra", p)
        with b.block(BlockKind.EX):
            b.read("v", "ra", 0, access=acc)
            b.read("w", "ra", 4)  # no annotation
            b.stop()
        findings = lint_template(b.build())
        assert any("lack region annotations" in f for f in findings)

    def test_spawn_store_to_unloaded_slot_flagged(self):
        b = ThreadBuilder("narrow")
        b.slot("a")
        b.slot("b")
        with b.block(BlockKind.PL):
            b.load("v", 0)  # only loads slot 0
        with b.block(BlockKind.EX):
            b.stop()
        act = one_template_activity(b, stores={1: 42})
        findings = lint_activity(act)
        assert any("never LOADs" in f for f in findings)

    def test_starving_falloc_flagged(self):
        child = ThreadBuilder("child")
        child.slot("x")
        with child.block(BlockKind.PL):
            child.load("v", 0)
        with child.block(BlockKind.EX):
            child.stop()
        parent = ThreadBuilder("parent")
        parent.slot("y")
        with parent.block(BlockKind.PL):
            parent.load("v", 0)
        with parent.block(BlockKind.EX):
            parent.falloc("rc", 1, 0)  # SC 0, but the child loads params
            parent.stop()
        act = TLPActivity(
            name="starver",
            templates=[parent.build(), child.build()],
            spawns=[SpawnSpec(template="parent", stores={0: 1})],
        )
        findings = lint_activity(act)
        assert any("SC 0" in f for f in findings)

    def test_register_pressure_flagged(self):
        from repro.isa.instructions import Instruction, Reg
        from repro.isa.opcodes import Op

        b = ThreadBuilder("greedy")
        b.slot("x")
        with b.block(BlockKind.PL):
            b.load("v", 0)
        with b.block(BlockKind.EX):
            b.emit(Instruction(op=Op.MOV, rd=120, ra=Reg(0)))
            b.stop()
        findings = lint_template(b.build())
        assert any("r120" in f for f in findings)
