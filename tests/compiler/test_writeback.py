"""Write-back prefetching (DMAPUT extension): correctness and structure."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.runner import run_pair, run_workload
from repro.compiler.passes import (
    PassError,
    PrefetchOptions,
    prefetch_transform,
    transform_program,
)
from repro.isa.opcodes import Op
from repro.isa.program import BlockKind
from repro.sim.config import paper_config
from repro.testing import small_config
from repro.workloads import inplace

WB = PrefetchOptions(allow_writeback=True)


class TestStructure:
    def worker(self):
        return inplace.build(n=4, threads=2).activity.template(
            "brighten_worker"
        )

    def test_without_writeback_program_untouched(self):
        prog = self.worker()
        assert transform_program(prog) is prog

    def test_with_writeback_full_pipeline_generated(self):
        out = transform_program(self.worker(), WB)
        assert out.has_prefetch
        pf_ops = [i.op for i in out.block(BlockKind.PF)]
        assert Op.DMAGET in pf_ops
        ex_ops = [i.op for i in out.block(BlockKind.EX)]
        assert Op.READ not in ex_ops and Op.WRITE not in ex_ops
        assert Op.LLOAD in ex_ops and Op.LSTORE in ex_ops
        ps_ops = [i.op for i in out.block(BlockKind.PS)]
        assert Op.DMAPUT in ps_ops and Op.DMAWAIT in ps_ops

    def test_dmaput_precedes_post_stores(self):
        """The write-back must land before consumers are signalled."""
        out = transform_program(self.worker(), WB)
        ps_ops = [i.op for i in out.block(BlockKind.PS)]
        assert ps_ops.index(Op.DMAWAIT) < ps_ops.index(Op.STORE)

    def test_distinct_tags_for_get_and_put(self):
        out = transform_program(self.worker(), WB)
        get_tags = {i.tag for i in out.flat if i.op is Op.DMAGET}
        put_tags = {i.tag for i in out.flat if i.op is Op.DMAPUT}
        assert get_tags.isdisjoint(put_tags)

    def test_pl_gains_persistent_loads(self):
        src = self.worker()
        out = transform_program(src, WB)
        assert len(out.block(BlockKind.PL)) > len(src.block(BlockKind.PL))

    def test_writeback_without_ps_block_rejected(self):
        from repro.isa.builder import ThreadBuilder
        from repro.isa.instructions import GlobalAccess

        b = ThreadBuilder("nops")
        p = b.pointer_slot("A_ptr", obj="A")
        acc = GlobalAccess(obj="A", base_slot=p, region_bytes=64,
                           expected_uses=32)
        with b.block(BlockKind.PL):
            b.load("ra", p)
        with b.block(BlockKind.EX):
            b.read("v", "ra", 0, access=acc)
            b.write("ra", 0, "v", access=acc)
            b.stop()
        with pytest.raises(PassError, match="PS block"):
            transform_program(b.build(), WB)


class TestCorrectness:
    @pytest.mark.parametrize("spes", [1, 2, 4])
    def test_inplace_results_match_oracle(self, spes):
        wl = inplace.build(n=8, threads=4)
        run_workload(wl, small_config(num_spes=spes), prefetch=True,
                     options=WB)

    def test_baseline_also_correct(self):
        wl = inplace.build(n=8, threads=4)
        run_workload(wl, small_config(num_spes=2), prefetch=False)

    def test_writeback_decouples_everything_and_wins(self):
        wl = inplace.build(n=16, threads=8)
        pair = run_pair(wl, paper_config(4), options=WB)
        assert pair.prefetch.stats.mix.reads == 0
        assert pair.prefetch.stats.mix.writes == 0
        assert pair.speedup > 3.0

    def test_without_writeback_option_nothing_changes(self):
        wl = inplace.build(n=8, threads=4)
        pair = run_pair(wl, paper_config(2))  # default options
        assert pair.prefetch.stats.mix.reads == pair.base.stats.mix.reads
        assert pair.prefetch.cycles == pair.base.cycles

    def test_memory_sees_dma_writes_not_scalar_writes(self):
        wl = inplace.build(n=8, threads=4)
        res = run_workload(wl, paper_config(2), prefetch=True, options=WB)
        assert res.stats.memory.write_requests > 0
        assert res.stats.mix.writes == 0  # no scalar WRITEs executed


@settings(max_examples=20, deadline=None)
@given(
    st.integers(2, 6).map(lambda k: 2 * k),  # even n in [4, 12]
    st.integers(1, 7),
    st.integers(0, 3),
)
def test_writeback_equivalence_property(n, num, shift):
    """Random brighten parameters: baseline and write-back transformed
    activities produce bit-identical images."""
    wl = inplace.build(n=n, threads=2, num=num, shift=shift)
    run_workload(wl, small_config(num_spes=2), prefetch=False)
    run_workload(wl, small_config(num_spes=2), prefetch=True, options=WB)
