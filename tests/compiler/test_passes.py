"""The prefetch transformation pass: structure of the generated code."""

from __future__ import annotations

import pytest

from repro.compiler.passes import (
    PassError,
    PrefetchOptions,
    prefetch_transform,
    transform_program,
)
from repro.isa.builder import ThreadBuilder
from repro.isa.instructions import GlobalAccess, LinExpr
from repro.isa.opcodes import Op
from repro.isa.program import BlockKind
from repro.workloads import matmul


def simple_reader(uses=32, size=64, start=LinExpr.const(0)):
    b = ThreadBuilder("reader")
    p = b.pointer_slot("A_ptr", obj="A")
    out = b.slot("out")
    access = GlobalAccess(
        obj="A", base_slot=p, region_start=start, region_bytes=size,
        expected_uses=uses,
    )
    with b.block(BlockKind.PL):
        b.load("ra", p)
        b.load("rout", out)
    with b.block(BlockKind.EX):
        b.read("v", "ra", 0, access=access)
        b.write("rout", 0, "v")
        b.stop()
    return b.build()


class TestStructure:
    def test_pf_block_added(self):
        out = transform_program(simple_reader())
        assert out.has_prefetch
        pf_ops = [i.op for i in out.block(BlockKind.PF)]
        assert Op.LSALLOC in pf_ops
        assert Op.DMAGET in pf_ops
        assert Op.STOREF in pf_ops

    def test_reads_become_lloads(self):
        out = transform_program(simple_reader())
        ex_ops = [i.op for i in out.block(BlockKind.EX)]
        assert Op.READ not in ex_ops
        assert Op.LLOAD in ex_ops

    def test_pl_pointer_load_redirected(self):
        src = simple_reader()
        out = transform_program(src)
        # The PL load of slot 0 (A_ptr) must now read the translated slot.
        pl = out.block(BlockKind.PL)
        assert pl[0].op is Op.LOAD
        assert pl[0].imm == src.frame_words  # first scratch slot

    def test_frame_words_extended(self):
        src = simple_reader()
        out = transform_program(src)
        assert out.frame_words == src.frame_words + 1

    def test_program_without_reads_unchanged(self):
        b = ThreadBuilder("pure")
        s = b.slot("x")
        with b.block(BlockKind.PL):
            b.load("v", s)
        with b.block(BlockKind.EX):
            b.stop()
        prog = b.build()
        assert transform_program(prog) is prog

    def test_unworthwhile_region_left_alone(self):
        prog = simple_reader(uses=1, size=4096)
        out = transform_program(prog)
        assert out is prog

    def test_double_transform_rejected(self):
        out = transform_program(simple_reader())
        with pytest.raises(PassError, match="already"):
            transform_program(out)

    def test_branch_targets_shifted_by_pf_length(self):
        b = ThreadBuilder("looper")
        p = b.pointer_slot("A_ptr", obj="A")
        access = GlobalAccess(obj="A", base_slot=p, region_bytes=64,
                              expected_uses=16)
        with b.block(BlockKind.PL):
            b.load("ra", p)
        with b.block(BlockKind.EX):
            b.li("i", 4)
            b.label("top")
            b.read("v", "ra", 0, access=access)
            b.subi("i", "i", 1)
            b.bnez("i", "top")
            b.stop()
        src = b.build()
        out = transform_program(src)
        shift = len(out.block(BlockKind.PF))
        src_branch = next(i for i in src.flat if i.op is Op.BNEZ)
        out_branch = next(i for i in out.flat if i.op is Op.BNEZ)
        assert out_branch.target == src_branch.target + shift
        # The rebuilt program re-validates: targets stay in-block.
        assert out.block_of(out_branch.target) is BlockKind.EX

    def test_register_clash_detected(self):
        b = ThreadBuilder("greedy")
        p = b.pointer_slot("A_ptr", obj="A")
        access = GlobalAccess(obj="A", base_slot=p, region_bytes=64,
                              expected_uses=16)
        with b.block(BlockKind.PL):
            b.load("ra", p)
        with b.block(BlockKind.EX):
            from repro.isa.instructions import Instruction, Reg

            b.read("v", "ra", 0, access=access)
            b.emit(Instruction(op=Op.MOV, rd=120, ra=Reg(0)))
            b.stop()
        with pytest.raises(PassError, match="collides"):
            transform_program(b.build())

    def test_frame_overflow_detected(self):
        prog = simple_reader()
        with pytest.raises(PassError, match="frame words"):
            transform_program(
                prog, PrefetchOptions(max_frame_words=prog.frame_words)
            )

    def test_pointer_never_loaded_in_pl_rejected(self):
        b = ThreadBuilder("nopload")
        p = b.pointer_slot("A_ptr", obj="A")
        other = b.slot("addr")
        access = GlobalAccess(obj="A", base_slot=p, region_bytes=64,
                              expected_uses=16)
        with b.block(BlockKind.PL):
            b.load("ra", other)  # loads a different slot entirely
        with b.block(BlockKind.EX):
            b.read("v", "ra", 0, access=access)
            b.stop()
        with pytest.raises(PassError, match="never"):
            transform_program(b.build())


class TestParamDependentRegions:
    def test_param_start_emits_address_math(self):
        src = simple_reader(start=LinExpr(param_slot=1, scale=128, offset=0))
        out = transform_program(src)
        pf_ops = [i.op for i in out.block(BlockKind.PF)]
        assert Op.MULI in pf_ops  # scale * param
        assert Op.SUB in pf_ops   # translated base = buf - start

    def test_constant_offset_uses_subi_style_translation(self):
        src = simple_reader(start=LinExpr.const(256))
        out = transform_program(src)
        pf_ops = [i.op for i in out.block(BlockKind.PF)]
        assert Op.LI in pf_ops


class TestSplitTransactions:
    def test_one_dma_per_word(self):
        src = simple_reader(size=64)
        out = transform_program(
            src, PrefetchOptions(split_transactions=True)
        )
        dmas = [i for i in out.block(BlockKind.PF) if i.op is Op.DMAGET]
        assert len(dmas) == 16
        assert all(i.imm == 4 for i in dmas)


class TestActivityTransform:
    def test_transform_preserves_template_ids_and_globals(self):
        wl = matmul.build(n=4, threads=2)
        out = prefetch_transform(wl.activity)
        assert out.template_ids == wl.activity.template_ids
        assert [g.name for g in out.globals] == [
            g.name for g in wl.activity.globals
        ]
        assert out.has_prefetch

    def test_join_template_untouched(self):
        wl = matmul.build(n=4, threads=2)
        out = prefetch_transform(wl.activity)
        assert not out.template("mmul_join").has_prefetch

    def test_cdfg_priority_orders_dma_commands(self):
        """mmul's A-band region is consumed before B's column walk starts,
        so the A DMAGET must be programmed first."""
        wl = matmul.build(n=4, threads=2)
        out = prefetch_transform(wl.activity)
        pf = out.template("mmul_worker").block(BlockKind.PF)
        comments = [i.comment for i in pf if i.op is Op.DMAGET]
        assert "A" in comments[0] and "B" in comments[1]
