"""Property: the prefetch transformation preserves program semantics.

Hypothesis generates random reader threads — random region shapes, access
patterns (sequential, strided, data-dependent), reduction ops — and we
check that the transformed program computes exactly the same outputs as
the baseline on a real machine, for every generated case and every
worthwhileness threshold.

This is the core compiler-correctness property: "all READ instructions
... are replaced ... with LOAD instructions that now access the
prefetched data in the local memory" must never change results.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.passes import PrefetchOptions, transform_program
from repro.core.activity import GlobalObject, ObjRef
from repro.isa.builder import ThreadBuilder
from repro.isa.instructions import GlobalAccess, LinExpr
from repro.isa.program import BlockKind
from repro.testing import run_program, small_config


@st.composite
def reader_case(draw):
    """A random single-object reduction over a region of global data."""
    words = draw(st.integers(2, 24))
    data = draw(
        st.lists(st.integers(0, 1000), min_size=words, max_size=words)
    )
    # Which elements does the thread read, in which order?
    indices = draw(
        st.lists(st.integers(0, words - 1), min_size=1, max_size=12)
    )
    op = draw(st.sampled_from(["add", "xor", "max"]))
    start_offset = draw(st.integers(0, 1))  # region may skip the first word
    usable = [i for i in indices if i >= start_offset]
    if not usable:
        usable = [start_offset]
    return words, data, usable, op, start_offset


def build_reader(words, indices, op, start_offset):
    b = ThreadBuilder("rand_reader")
    p = b.pointer_slot("A_ptr", obj="A")
    out = b.slot("out")
    region_bytes = 4 * (words - start_offset)
    access = GlobalAccess(
        obj="A",
        base_slot=p,
        region_start=LinExpr.const(4 * start_offset),
        region_bytes=region_bytes,
        expected_uses=max(1, len(indices)),
        dynamic_index=True,
    )
    with b.block(BlockKind.PL):
        b.load("ra", p)
        b.load("rout", out)
    with b.block(BlockKind.EX):
        b.li("acc", 0)
        for i in indices:
            b.read("v", "ra", 4 * i, access=access)
            getattr(b, {"add": "add", "xor": "xor", "max": "max_"}[op])(
                "acc", "acc", "v"
            )
        b.write("rout", 0, "acc")
        b.stop()
    return b.build()


def execute(program, data):
    res = run_program(
        program,
        stores={0: ObjRef("A"), 1: ObjRef("out")},
        globals_=[GlobalObject("A", tuple(data)), GlobalObject.zeros("out", 1)],
        config=small_config(num_spes=1),
    )
    return res.word("out")


@settings(max_examples=30, deadline=None)
@given(reader_case(), st.sampled_from([0.0, 0.5, 2.0]))
def test_transform_preserves_results(case, threshold):
    words, data, indices, op, start_offset = case
    baseline = build_reader(words, indices, op, start_offset)
    transformed = transform_program(
        baseline, PrefetchOptions(worthwhile_threshold=threshold)
    )
    assert execute(baseline, data) == execute(transformed, data)


@settings(max_examples=15, deadline=None)
@given(reader_case())
def test_split_transactions_preserve_results(case):
    words, data, indices, op, start_offset = case
    baseline = build_reader(words, indices, op, start_offset)
    transformed = transform_program(
        baseline,
        PrefetchOptions(worthwhile_threshold=0.0, split_transactions=True),
    )
    assert execute(baseline, data) == execute(transformed, data)


@settings(max_examples=15, deadline=None)
@given(reader_case())
def test_transform_never_slower_at_high_latency(case):
    """With a 300-cycle memory and multiple reads, prefetch must not lose
    (each decoupled READ saves a round trip; overhead is one DMA)."""
    words, data, indices, op, start_offset = case
    if len(indices) < 6:
        return  # too little traffic to assert a win
    baseline = build_reader(words, indices, op, start_offset)
    transformed = transform_program(
        baseline, PrefetchOptions(worthwhile_threshold=0.0)
    )
    if transformed is baseline:
        return
    cfg = small_config(num_spes=1).with_latency(300)

    def cycles(prog):
        return run_program(
            prog,
            stores={0: ObjRef("A"), 1: ObjRef("out")},
            globals_=[
                GlobalObject("A", tuple(data)),
                GlobalObject.zeros("out", 1),
            ],
            config=cfg,
        ).cycles

    assert cycles(transformed) < cycles(baseline)
