"""CDFG utilities: def/use edges, prefetch priority, undefined-use lint."""

from __future__ import annotations

from repro.compiler.cdfg import build_cdfg, prefetch_order, undefined_uses
from repro.isa.builder import ThreadBuilder
from repro.isa.program import BlockKind


def chain_program():
    b = ThreadBuilder("chain")
    s = b.slot("x")
    with b.block(BlockKind.PL):
        b.load("a", s)          # 0
    with b.block(BlockKind.EX):
        b.addi("b", "a", 1)     # 1: uses a (def in PL, other block)
        b.addi("c", "b", 1)     # 2: uses b (def at 1)
        b.add("d", "b", "c")    # 3: uses b, c
        b.stop()                # 4
    return b.build()


class TestDataEdges:
    def test_within_block_def_use(self):
        g = build_cdfg(chain_program())
        assert g.producers(2) == [1]
        assert sorted(g.producers(3)) == [1, 2]

    def test_cross_block_uses_have_no_edge(self):
        # Registers don't survive block boundaries architecturally (the
        # yield clears them), so the CDFG only tracks within-block edges.
        g = build_cdfg(chain_program())
        assert g.producers(1) == []

    def test_consumers_inverse(self):
        g = build_cdfg(chain_program())
        assert sorted(g.consumers(1)) == [2, 3]

    def test_control_edges_follow_block_order(self):
        g = build_cdfg(chain_program())
        assert g.control_edges == [(BlockKind.PL, BlockKind.EX)]

    def test_last_writer_wins(self):
        b = ThreadBuilder("rewrite")
        with b.block(BlockKind.EX):
            b.li("x", 1)       # 0
            b.li("x", 2)       # 1
            b.addi("y", "x", 0)  # 2 -> producer must be 1, not 0
            b.stop()
        g = build_cdfg(b.build())
        assert g.producers(2) == [1]


class TestPrefetchOrder:
    def test_orders_by_first_use(self):
        class R:
            def __init__(self, obj, first):
                self.obj = obj
                self.read_indices = [first]

            @property
            def first_use(self):
                return min(self.read_indices)

        ordered = prefetch_order([R("late", 9), R("early", 2), R("mid", 5)])
        assert [r.obj for r in ordered] == ["early", "mid", "late"]


class TestUndefinedUses:
    def test_clean_program_has_no_undefined_ex_uses(self):
        report = undefined_uses(chain_program())
        assert report[BlockKind.EX] == set()

    def test_detects_read_before_write(self):
        b = ThreadBuilder("bad")
        s = b.slot("x")
        with b.block(BlockKind.PL):
            b.load("a", s)
        with b.block(BlockKind.EX):
            b.addi("out", "never_written", 1)
            b.stop()
        report = undefined_uses(b.build())
        never = b.reg("never_written").index
        assert never in report[BlockKind.EX]

    def test_pl_definitions_satisfy_ex(self):
        report = undefined_uses(chain_program())
        assert report[BlockKind.PL] == set()

    def test_pf_registers_do_not_leak_into_ex(self):
        """Values computed in PF are dead after the yield; a program
        consuming them in EX must be flagged."""
        b = ThreadBuilder("leaky")
        s = b.slot("x")
        with b.block(BlockKind.PF):
            b.lsalloc("buf", 64)
            b.load("rs", s)
            b.dmaget("buf", "rs", 64, tag=0)
        with b.block(BlockKind.PL):
            b.load("v", s)
        with b.block(BlockKind.EX):
            b.lload("w", "buf", 0)  # BUG: buf died at the yield
            b.stop()
        report = undefined_uses(b.build())
        assert b.reg("buf").index in report[BlockKind.EX]

    def test_workload_templates_pass_the_lint(self):
        from repro.workloads import bitcount, matmul, zoom
        from repro.compiler.passes import prefetch_transform

        for wl in (matmul.build(n=4, threads=2),
                   zoom.build(n=4, z=2, threads=2),
                   bitcount.build(iterations=4, unroll=2)):
            for act in (wl.activity, prefetch_transform(wl.activity)):
                for template in act.templates:
                    report = undefined_uses(template)
                    bad = {
                        k: v for k, v in report.items()
                        if k is not BlockKind.PF and v
                    }
                    assert not bad, (
                        f"{template.name}: registers read before write: {bad}"
                    )
