"""Strided DMA gather (DMAGETS): ISA, MFC, compiler and workload behaviour."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.runner import run_pair, run_workload
from repro.compiler.passes import PrefetchOptions, transform_program
from repro.isa.instructions import GlobalAccess
from repro.isa.opcodes import Op
from repro.isa.program import BlockKind
from repro.sim.config import paper_config
from repro.testing import small_config
from repro.workloads import colsum


class TestAnnotationValidation:
    def test_strided_access_requires_stride_param(self):
        with pytest.raises(ValueError, match="stride_param_slot"):
            GlobalAccess(obj="A", base_slot=0, stride_bytes=64)

    def test_unaligned_stride_rejected(self):
        with pytest.raises(ValueError, match="stride"):
            GlobalAccess(obj="A", base_slot=0, stride_bytes=6,
                         stride_param_slot=1)

    def test_contiguous_access_needs_no_param(self):
        acc = GlobalAccess(obj="A", base_slot=0)
        assert not acc.is_strided


class TestPassStructure:
    def worker(self, mode="gather"):
        return colsum.build(n=8, mode=mode).activity.template("colsum_worker")

    def test_gather_emits_dmagets(self):
        out = transform_program(self.worker())
        pf = out.block(BlockKind.PF)
        assert any(i.op is Op.DMAGETS for i in pf)
        assert not any(i.op is Op.DMAGET for i in pf)
        gets = [i for i in pf if i.op is Op.DMAGETS]
        assert gets[0].imm == 8  # n words gathered
        assert gets[0].stride == 32  # 4 * n bytes between rows

    def test_stride_parameter_redirected_to_unit(self):
        src = self.worker()
        out = transform_program(src)
        # PF stashes the value 4 into a scratch slot...
        pf = out.block(BlockKind.PF)
        lis = [i for i in pf if i.op is Op.LI and i.imm == 4]
        assert lis, "PF must materialize the unit stride"
        # ...and the PL load of the stride param reads the scratch slot.
        stride_param = 3  # slot('stride') in the builder
        src_pl = [i.imm for i in src.block(BlockKind.PL) if i.op is Op.LOAD]
        out_pl = [i.imm for i in out.block(BlockKind.PL) if i.op is Op.LOAD]
        assert stride_param in src_pl
        assert stride_param not in out_pl

    def test_two_scratch_slots_per_strided_region(self):
        src = self.worker()
        out = transform_program(src)
        assert out.frame_words == src.frame_words + 2


class TestExecution:
    @pytest.mark.parametrize("mode", ["none", "block", "gather"])
    def test_baseline_correct_in_every_mode(self, mode):
        wl = colsum.build(n=8, mode=mode)
        run_workload(wl, small_config(num_spes=2), prefetch=False)

    @pytest.mark.parametrize("spes", [1, 2, 4])
    def test_gathered_results_match_oracle(self, spes):
        wl = colsum.build(n=8, mode="gather")
        run_workload(wl, small_config(num_spes=spes), prefetch=True)

    def test_gather_decouples_all_reads(self):
        wl = colsum.build(n=8, mode="gather")
        pair = run_pair(wl, paper_config(2))
        assert pair.prefetch.stats.mix.reads == 0
        assert pair.speedup > 2.0

    def test_gather_moves_only_needed_bytes(self):
        n = 16
        gather = run_workload(
            colsum.build(n=n, mode="gather"), paper_config(4), prefetch=True
        )
        block = run_workload(
            colsum.build(n=n, mode="block"), paper_config(4), prefetch=True,
            options=PrefetchOptions(worthwhile_threshold=0.0),
        )
        # Gather transfers exactly the matrix once (n columns x n words).
        assert gather.stats.mfc.bytes_transferred == 4 * n * n
        # Block mode copies the whole matrix per worker.
        assert block.stats.mfc.bytes_transferred > 4 * gather.stats.mfc.bytes_transferred

    def test_worthwhileness_rejects_block_mode_by_default(self):
        wl = colsum.build(n=16, mode="block")
        pair = run_pair(wl, paper_config(2))
        assert pair.prefetch.cycles == pair.base.cycles

    def test_oracle(self):
        a = [1, 2,
             3, 4]
        assert colsum.oracle_colsum(a, 2) == [4, 6]


@settings(max_examples=15, deadline=None)
@given(st.integers(2, 10))
def test_gather_equivalence_property(n):
    """Any matrix size: gathered execution matches the oracle."""
    wl = colsum.build(n=n, mode="gather")
    run_workload(wl, small_config(num_spes=2), prefetch=True)
    run_workload(wl, small_config(num_spes=2), prefetch=False)
