"""zoom workload: oracle, correctness, READ/WRITE ratio."""

from __future__ import annotations

import pytest

from repro.bench.runner import run_pair, run_workload
from repro.sim.config import paper_config
from repro.testing import small_config
from repro.workloads import zoom


class TestOracle:
    def test_constant_image_zooms_to_constant(self):
        img = [7] * 16
        out = zoom.oracle_zoom(img, 4, 2)
        assert all(v == 7 for v in out)

    def test_output_shape(self):
        out = zoom.oracle_zoom([0] * 16, 4, 4)
        assert len(out) == (4 * 4) ** 2

    def test_exact_pixels_at_sample_points(self):
        # out[y*z][x*z] == img[y][x] (fx == 0 -> pure source pixel).
        n, z = 4, 2
        img = list(range(16))
        out = zoom.oracle_zoom(img, n, z)
        m = n * z
        for y in range(n):
            for x in range(n):
                assert out[(y * z) * m + (x * z)] == img[y * n + x]

    def test_horizontal_interpolation_midpoint(self):
        n, z = 2, 2
        img = [0, 10, 0, 10]
        out = zoom.oracle_zoom(img, n, z)
        m = n * z
        # Halfway between columns 0 and 1: (1*0 + 1*10) / 2 = 5.
        assert out[1] == 5


class TestBuild:
    def test_rejects_non_power_of_two_factor(self):
        with pytest.raises(ValueError, match="power of two"):
            zoom.build(n=8, z=3)

    def test_rejects_bad_band_split(self):
        with pytest.raises(ValueError, match="bands"):
            zoom.build(n=4, z=4, threads=32)

    def test_globals(self):
        wl = zoom.build(n=4, z=2, threads=2)
        assert {g.name for g in wl.activity.globals} == {"img", "out"}


class TestExecution:
    @pytest.mark.parametrize("spes", [1, 2, 4])
    def test_baseline_zooms_correctly(self, spes):
        wl = zoom.build(n=4, z=4, threads=4)
        run_workload(wl, small_config(num_spes=spes), prefetch=False)

    @pytest.mark.parametrize("spes", [1, 4])
    def test_prefetch_zooms_correctly(self, spes):
        wl = zoom.build(n=4, z=4, threads=4)
        run_workload(wl, small_config(num_spes=spes), prefetch=True)

    def test_read_write_ratio_is_two(self):
        wl = zoom.build(n=4, z=4, threads=4)
        res = run_workload(wl, small_config(num_spes=2), prefetch=False)
        mix = res.stats.mix
        assert mix.writes == (4 * 4) ** 2
        assert mix.reads == 2 * mix.writes

    def test_prefetch_decouples_all_reads_and_wins_big(self):
        wl = zoom.build(n=8, z=4, threads=8)
        pair = run_pair(wl, paper_config(4))
        assert pair.prefetch.stats.mix.reads == 0
        assert pair.speedup > 5.0

    def test_band_regions_cover_disjoint_source_rows(self):
        wl = zoom.build(n=8, z=2, threads=4)
        assert wl.params["band"] == 4
        # Each worker's region covers band/z = 2 source rows of 8 words.
        worker = wl.activity.template("zoom_worker")
        from repro.compiler.analysis import analyze_program

        region = analyze_program(worker).regions[0]
        assert region.size_bytes == 4 * 8 * 2
