"""Workload helpers: deterministic data, range splitting, verification."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.workloads.common import lcg_words, split_range


class TestLcgWords:
    def test_deterministic(self):
        assert lcg_words(10, seed=5) == lcg_words(10, seed=5)

    def test_seed_changes_sequence(self):
        assert lcg_words(10, seed=5) != lcg_words(10, seed=6)

    @given(st.integers(0, 200), st.integers(0, 50), st.integers(1, 50))
    def test_range_respected(self, count, lo, span):
        hi = lo + span
        values = lcg_words(count, lo=lo, hi=hi)
        assert len(values) == count
        assert all(lo <= v < hi for v in values)

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            lcg_words(5, lo=3, hi=3)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            lcg_words(-1)


class TestSplitRange:
    @given(st.integers(0, 100), st.integers(1, 16))
    def test_partition_properties(self, total, parts):
        spans = split_range(total, parts)
        assert len(spans) == parts
        # Chunks tile [0, total) exactly.
        cursor = 0
        for start, end in spans:
            assert start == cursor
            assert end >= start
            cursor = end
        assert cursor == total
        # Sizes differ by at most one.
        sizes = [e - s for s, e in spans]
        assert max(sizes) - min(sizes) <= 1

    def test_zero_parts_rejected(self):
        with pytest.raises(ValueError):
            split_range(10, 0)
