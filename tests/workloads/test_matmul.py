"""mmul workload: oracle, correctness on the machine, instruction profile."""

from __future__ import annotations

import pytest

from repro.bench.runner import run_pair, run_workload
from repro.sim.config import paper_config
from repro.testing import small_config
from repro.workloads import matmul
from repro.workloads.common import check_outputs


class TestOracle:
    def test_identity(self):
        n = 3
        ident = [1 if i == j else 0 for i in range(n) for j in range(n)]
        a = list(range(9))
        assert matmul.oracle_matmul(a, ident, n) == a

    def test_small_known_product(self):
        a = [1, 2, 3, 4]
        b = [5, 6, 7, 8]
        assert matmul.oracle_matmul(a, b, 2) == [19, 22, 43, 50]


class TestBuild:
    def test_rejects_non_power_of_two_threads(self):
        with pytest.raises(ValueError, match="power of two"):
            matmul.build(n=8, threads=3)

    def test_rejects_threads_not_dividing_n(self):
        with pytest.raises(ValueError, match="divide"):
            matmul.build(n=4, threads=8)

    def test_rejects_tiny_n(self):
        with pytest.raises(ValueError):
            matmul.build(n=1)

    def test_globals_and_templates(self):
        wl = matmul.build(n=4, threads=2)
        assert {g.name for g in wl.activity.globals} == {"A", "B", "C"}
        assert wl.activity.template("mmul_worker").pointer_params


class TestExecution:
    @pytest.mark.parametrize("n,threads,spes", [(4, 2, 1), (4, 4, 2), (8, 4, 4)])
    def test_baseline_computes_correct_product(self, n, threads, spes):
        wl = matmul.build(n=n, threads=threads)
        run_workload(wl, small_config(num_spes=spes), prefetch=False)

    @pytest.mark.parametrize("n,threads,spes", [(4, 2, 1), (8, 4, 4)])
    def test_prefetch_computes_correct_product(self, n, threads, spes):
        wl = matmul.build(n=n, threads=threads)
        run_workload(wl, small_config(num_spes=spes), prefetch=True)

    def test_instruction_profile_matches_table5_shape(self):
        wl = matmul.build(n=4, threads=2)
        res = run_workload(wl, small_config(num_spes=2), prefetch=False)
        mix = res.stats.mix
        assert mix.reads == 2 * 4**3
        assert mix.writes == 4**2
        assert mix.loads < 0.05 * mix.total

    def test_prefetch_decouples_all_reads(self):
        wl = matmul.build(n=4, threads=2)
        pair = run_pair(wl, paper_config(2))
        assert pair.prefetch.stats.mix.reads == 0
        assert pair.decoupled_fraction == 1.0

    def test_prefetch_speedup_order_of_magnitude(self):
        wl = matmul.build(n=8, threads=8)
        pair = run_pair(wl, paper_config(4))
        assert pair.speedup > 5.0

    def test_deterministic_inputs(self):
        w1 = matmul.build(n=4, threads=2, seed=3)
        w2 = matmul.build(n=4, threads=2, seed=3)
        assert w1.activity.global_obj("A").data == w2.activity.global_obj("A").data
        w3 = matmul.build(n=4, threads=2, seed=4)
        assert w1.activity.global_obj("A").data != w3.activity.global_obj("A").data

    def test_verify_detects_corruption(self):
        from repro.cell.machine import Machine

        wl = matmul.build(n=4, threads=2)
        m = Machine(small_config(num_spes=1))
        m.load(wl.activity)
        m.run()
        obj = wl.activity.global_obj("C")
        m.memory.write_word(obj.addr, 10**9)  # corrupt one element
        assert check_outputs(wl, m)
        with pytest.raises(AssertionError):
            wl.verify(m)
