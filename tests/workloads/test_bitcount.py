"""bitcnt workload: oracle, kernel agreement, fork behaviour, decoupling."""

from __future__ import annotations

import pytest

from repro.bench.runner import run_pair, run_workload
from repro.sim.config import paper_config
from repro.testing import small_config
from repro.workloads import bitcount


class TestOracle:
    def test_values_are_16_bit(self):
        for g in range(50):
            assert 0 <= bitcount.value_for_index(g) < 2**16

    def test_oracle_is_five_times_popcount(self):
        out = bitcount.oracle_bitcnt(8)
        for g, total in enumerate(out):
            assert total == 5 * bin(bitcount.value_for_index(g)).count("1")

    def test_values_vary(self):
        vals = {bitcount.value_for_index(g) for g in range(32)}
        assert len(vals) > 16


class TestBuild:
    def test_rejects_zero_iterations(self):
        with pytest.raises(ValueError):
            bitcount.build(iterations=0)

    def test_rejects_non_dividing_unroll(self):
        with pytest.raises(ValueError, match="unroll"):
            bitcount.build(iterations=10, unroll=4)

    def test_has_nine_templates(self):
        wl = bitcount.build(iterations=4, unroll=2)
        assert len(wl.activity.templates) == 9

    def test_tables_contain_popcounts(self):
        wl = bitcount.build(iterations=4, unroll=2)
        btbl = wl.activity.global_obj("btbl").data
        assert btbl[0] == 0 and btbl[255] == 8 and btbl[0b1010] == 2
        ntbl = wl.activity.global_obj("ntbl").data
        assert ntbl == tuple(bin(i).count("1") for i in range(16))


class TestExecution:
    @pytest.mark.parametrize("spes", [1, 2, 8])
    def test_baseline_counts_correctly(self, spes):
        wl = bitcount.build(iterations=8, unroll=4)
        run_workload(wl, small_config(num_spes=spes), prefetch=False)

    @pytest.mark.parametrize("spes", [1, 4])
    def test_prefetch_counts_correctly(self, spes):
        wl = bitcount.build(iterations=8, unroll=4)
        run_workload(wl, small_config(num_spes=spes), prefetch=True)

    def test_thread_count_matches_structure(self):
        wl = bitcount.build(iterations=8, unroll=4)
        from repro.cell.machine import Machine

        m = Machine(small_config(num_spes=2))
        m.load(wl.activity)
        m.run()
        # join + 2 chain links + per iteration (1 iter + 1 comb + 5 kernels).
        assert m.threads_created == 1 + 2 + 8 * 7

    def test_frame_traffic_dominates_reads(self):
        wl = bitcount.build(iterations=8, unroll=4)
        res = run_workload(wl, small_config(num_spes=2), prefetch=False)
        mix = res.stats.mix
        assert mix.loads + mix.stores > 2 * mix.reads
        assert mix.reads == 12 * 8  # 4 byte-table + 8 nibble-table per iter
        assert mix.writes == 8

    def test_prefetch_decouples_only_nibble_table(self):
        wl = bitcount.build(iterations=8, unroll=4)
        pair = run_pair(wl, paper_config(2))
        # 8 of 12 READs per iteration decoupled (paper: 62%).
        assert pair.prefetch.stats.mix.reads == 4 * 8
        assert pair.decoupled_fraction == pytest.approx(8 / 12)

    def test_speedup_is_modest(self):
        wl = bitcount.build(iterations=16, unroll=4)
        pair = run_pair(wl, paper_config(4))
        assert 1.0 < pair.speedup < 4.0

    def test_lse_stalls_present_under_forking(self):
        from repro.sim.stats import Bucket

        wl = bitcount.build(iterations=16, unroll=4)
        res = run_workload(wl, paper_config(2), prefetch=False)
        assert res.stats.average_breakdown.lse_stall > 0
